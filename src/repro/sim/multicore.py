"""Multi-core co-run simulation: N replay cores over a shared memory system.

The GRP paper evaluates prefetching on one core, but its central tension
— prefetch traffic competing with demand traffic for L2 capacity, MSHRs,
and DRAM bandwidth — only fully materializes when several cores contend
for the shared levels.  This module steps N :class:`~repro.cpu.core.Core`
instances, each replaying its own workload trace and owning a private L1
and prefetch engine/controller, against **one** L2, MSHR file, and DRAM
system, on a unified clock:

Arbitration
    One trace event per step.  The arbiter picks the live core whose next
    instruction issues earliest (``max(clock, ring[head])``, the same
    expression the single-core loop computes); ties go to the first
    candidate scanning round-robin from the core after the previous
    winner.  The order is a pure function of the spec, so a co-run is
    deterministic — two runs of the same :class:`CoRunSpec` produce
    byte-identical results.

Address disjointness
    Core ``i``'s workload is built in an address space based at
    ``i << 36``, so co-running cores — even two replicas of the same
    workload — never share blocks.  Cross-core interference is therefore
    purely *structural* (set conflicts, MSHR occupancy, channel
    contention), and every cache line has exactly one owning core.

Attribution
    The shared levels mirror each counter bump into a per-core slice
    (see :meth:`repro.mem.cache.Cache.enable_core_stats` for the rules),
    so per-core counters sum to the shared ones by construction, and
    cross-core events (a prefetch evicting another core's line; a demand
    miss to a block another core's prefetch displaced) land in the
    :class:`InterferenceMatrix`.

Degenerate case
    A 1-core co-run issues the identical operation sequence as the
    single-core engine: ``execute_corun(CoRunSpec.create([w], s))`` is
    byte-identical (``RunResult.to_dict()``) to
    ``execute(RunSpec.create(w, s))``.  The tests pin this contract.
"""

from repro.compiler.driver import compile_hints
from repro.cpu.core import Core
from repro.mem.cache import Cache
from repro.mem.dram import DRAMSystem
from repro.mem.hierarchy import Hierarchy
from repro.mem.mshr import MSHRFile
from repro.sim.stats import CoRunResult, SimStats, geometric_mean
from repro.trace.interp import Interpreter
from repro.workloads.base import get_workload

#: Stride between consecutive cores' address-space bases.  Large enough
#: that no workload's segments reach the next core's base, and a multiple
#: of every DRAM channel/bank/row geometry in use, so shifting a
#: workload's image preserves its channel interleaving and row alignment.
CORE_BASE_STRIDE = 1 << 36


def jain_fairness(values):
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``, in (0, 1].

    1.0 when all values are equal (perfectly fair); approaches ``1/n``
    when one value dominates.  0.0 for empty or all-zero input.
    """
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    total = sum(vals)
    squares = sum(v * v for v in vals)
    return (total * total) / (len(vals) * squares)


class InterferenceMatrix:
    """Cross-core interference counters for one co-run.

    All three matrices are indexed ``[evicter or polluter][victim]`` and
    only record events where the two cores differ — same-core pollution
    and evictions are ordinary single-core behavior, visible in the
    per-core cache stats.
    """

    def __init__(self, n_cores):
        self.n_cores = n_cores
        #: Demand misses core *victim* took on blocks core *evicter*'s
        #: prefetch fills displaced (shadow-tag attribution): the direct
        #: cross-core cost of someone else's prefetch aggression.
        self.pollution = [[0] * n_cores for _ in range(n_cores)]
        #: Evictions of *victim*-owned lines by *evicter*'s demand fills.
        self.demand_evictions = [[0] * n_cores for _ in range(n_cores)]
        #: Evictions of *victim*-owned lines by *evicter*'s prefetch fills.
        self.prefetch_evictions = [[0] * n_cores for _ in range(n_cores)]

    def note_pollution(self, evicter, sufferer):
        """Record a cross-core pollution miss (called by the shared L2)."""
        self.pollution[evicter][sufferer] += 1

    def note_eviction(self, evicter, owner, by_prefetch):
        """Record a cross-core eviction (called by the shared L2)."""
        if by_prefetch:
            self.prefetch_evictions[evicter][owner] += 1
        else:
            self.demand_evictions[evicter][owner] += 1

    def cross_core_pollution(self):
        """Total cross-core pollution misses (off-diagonal sum)."""
        return sum(sum(row) for row in self.pollution)

    def snapshot(self):
        """Plain-data form (nested lists; JSON-lossless)."""
        return {
            "pollution": [list(row) for row in self.pollution],
            "demand_evictions": [list(row)
                                 for row in self.demand_evictions],
            "prefetch_evictions": [list(row)
                                   for row in self.prefetch_evictions],
        }


class SharedMemorySystem:
    """The contended levels of a co-run: L2 + MSHR file + DRAM.

    Built once per :class:`MultiCoreSimulator` and handed to every core's
    :class:`~repro.mem.hierarchy.Hierarchy` (its ``shared`` parameter),
    which aliases these objects instead of building private ones.  Also
    carries the in-flight prefetch ready-time structures, which belong to
    the shared L2's contents.
    """

    def __init__(self, config, n_cores):
        self.n_cores = n_cores
        self.l2 = Cache(
            "L2", config.l2_size, config.l2_assoc, config.block_size,
            config.l2_latency, prefetch_insert=config.prefetch_insert,
        )
        self.mshrs = MSHRFile(config.mshr_entries)
        self.dram = DRAMSystem(config.dram)
        #: {block -> data-ready cycle} of in-flight prefetch fills, plus
        #: its pruning min-heap (see Hierarchy); shared because the
        #: blocks live in the shared L2.
        self.prefetch_ready = {}
        self.ready_heap = []
        self.interference = InterferenceMatrix(n_cores)
        self.l2.enable_core_stats(n_cores)
        self.l2.interference = self.interference
        self.mshrs.enable_core_stats(n_cores)
        self.dram.enable_core_stats(n_cores)

    def set_active(self, core_id):
        """Tag subsequent shared-level events as core ``core_id``'s."""
        self.l2.active_core = core_id
        self.dram.active_core = core_id


class CoreCell:
    """One core's private machinery inside a co-run.

    Owns the core model, its private-L1 hierarchy bound to the shared
    levels, the workload's trace, and the labels its
    :class:`~repro.sim.stats.SimStats` will carry.

    ``compiled`` selects the trace form: the default builds the
    interpreter's event-stream generator (``self.events``) the stepped
    reference loop consumes; ``compiled=True`` builds the columnar
    :class:`~repro.trace.compiled.CompiledTrace` (``self.trace``) the
    fused loop iterates, through the process-wide trace store — keyed
    with the cell's address-space ``base``, so core 0 shares entries
    with single-core runs and higher cores get their own.
    """

    def __init__(self, cell_spec, core_id, shared, config, compiled=False):
        # Late import: runner imports spec/stats, and the experiment layer
        # imports us — mirror RunSpec.create's cycle-breaking pattern.
        from repro.sim.runner import SCHEMES, _built_workload

        workload = get_workload(cell_spec.workload)
        scheme_spec = SCHEMES[cell_spec.scheme]
        space, built, program = _built_workload(
            workload, cell_spec.scale, cacheable=True,
            base=core_id * CORE_BASE_STRIDE)
        if scheme_spec.hinted:
            result = compile_hints(
                program,
                l2_size=config.l2_size,
                block_size=config.block_size,
                policy=cell_spec.policy,
                variable_regions=scheme_spec.variable_regions,
                indirect_mode=scheme_spec.indirect_mode,
            )
            hint_table = result.hint_table
            compile_for_trace = result
        else:
            result = None
            hint_table = None
            compile_for_trace = None
        prefetcher = scheme_spec.factory(result)
        self.core_id = core_id
        self.workload_name = workload.name
        self.scheme_label = (
            cell_spec.scheme if cell_spec.mode == "real"
            else "%s/%s" % (cell_spec.scheme, cell_spec.mode))
        self.hierarchy = Hierarchy(
            config, space, prefetcher, mode=cell_spec.mode,
            shared=shared, core_id=core_id)
        self.core = Core(config, self.hierarchy, hint_table,
                         core_id=core_id)
        interp = Interpreter(
            program, space, compile_for_trace, seed=cell_spec.seed,
            block_size=config.block_size, ops_scale=workload.ops_scale,
        )
        for name, addr in built.pointer_bindings.items():
            interp.bind_pointer(name, addr)
        limit = (cell_spec.limit_refs if cell_spec.limit_refs is not None
                 else workload.default_refs)
        if compiled:
            # Columnar trace through the process-wide store, mirroring
            # runner._simulate's keying — including the hint signature,
            # because hinted traces embed directives — plus the cell's
            # base so per-core streams never alias across cores.
            from repro.trace.store import (
                TraceKey, default_store, hint_signature,
            )

            hint_sig = (
                hint_signature(cell_spec.policy,
                               scheme_spec.variable_regions,
                               scheme_spec.indirect_mode,
                               config.l2_size)
                if scheme_spec.hinted else None
            )
            key = TraceKey(workload.name, cell_spec.scale, cell_spec.seed,
                           limit, config.block_size, hint_sig,
                           base=core_id * CORE_BASE_STRIDE)
            self.trace = default_store().get_or_build(
                key, lambda: interp.run_columns(limit))
            self.events = None
        else:
            #: The cell's trace event stream (the interpreter enforces
            #: the reference limit, as the single-core reference loop).
            self.events = interp.run(limit=limit)
            self.trace = None


class MultiCoreSimulator:
    """Steps N cores against one shared memory system (reference loop).

    This is the slow, obviously-correct replay: one trace event per
    arbitration step, every core going through the out-of-line
    ``Hierarchy.access`` path.  It is the semantic reference the fused
    backend (:mod:`repro.sim.multicore_fused`) is pinned against —
    byte-identical ``CoRunResult.to_dict()`` for every spec both can
    run — and the fallback for the configurations fused declines.
    """

    #: Subclasses flip this to build cells with compiled columnar traces
    #: instead of interpreter event streams.
    COMPILED_CELLS = False

    def __init__(self, spec):
        config = spec.machine_config()
        self.spec = spec
        self.config = config
        self.shared = SharedMemorySystem(config, spec.n_cores)
        self.cells = [
            CoreCell(cell_spec, core_id, self.shared, config,
                     compiled=self.COMPILED_CELLS)
            for core_id, cell_spec in enumerate(spec.cells)
        ]

    def run(self):
        """Replay every core's trace to completion; finish the hierarchy.

        The shared demand-busy watermark is synchronized around each
        step: the SRP prioritizer forbids prefetch while *any* core's
        demand miss is outstanding at the shared DRAM, not just the
        stepping core's own.  At N=1 the watermark always equals the
        single controller's own value, so the sync never writes.
        """
        cells = self.cells
        shared = self.shared
        n = len(cells)
        for cell in cells:
            cell.core.begin_stepping()
        streams = [cell.events for cell in cells]
        pending = [next(stream, None) for stream in streams]
        remaining = sum(1 for event in pending if event is not None)
        rr = 0
        watermark = 0
        while remaining:
            best = -1
            best_key = None
            for step in range(n):
                i = rr + step
                if i >= n:
                    i -= n
                if pending[i] is None:
                    continue
                key = cells[i].core.next_issue_at()
                if best_key is None or key < best_key:
                    best = i
                    best_key = key
            cell = cells[best]
            shared.set_active(best)
            controller = cell.hierarchy.controller
            if watermark > controller.demand_busy_until:
                controller.demand_busy_until = watermark
            cell.core.step(pending[best])
            if controller.demand_busy_until > watermark:
                watermark = controller.demand_busy_until
            event = next(streams[best], None)
            pending[best] = event
            if event is None:
                remaining -= 1
            rr = best + 1
            if rr == n:
                rr = 0
        # Per-core finish in core-id order (deterministic): drain the
        # controller's residual prefetch issue at that core's final
        # cycle, then finalize its metrics — the single-core sequence.
        for core_id, cell in enumerate(cells):
            shared.set_active(core_id)
            cell.hierarchy.finish(cell.core.cycles)

    def results(self):
        """Per-core :class:`SimStats`, each over its attribution slice."""
        return [
            SimStats(cell.workload_name, cell.scheme_label,
                     cell.core, cell.hierarchy)
            for cell in self.cells
        ]


def execute_corun(spec, solo_baseline=True):
    """Run the co-run a :class:`~repro.sim.spec.CoRunSpec` describes.

    The spec's ``backend`` field (resolved through
    :func:`repro.sim.runner.resolve_corun_backend`, so ``auto`` honors
    ``REPRO_CORUN_BACKEND``) picks the replay loop: ``fused`` is the
    skip-ahead stretch scheduler, ``stepped`` the per-event reference.
    A config the fused loop cannot replay exactly (TLB enabled) falls
    back to stepped — a silent degradation, never an error, mirroring
    the single-core vectorized backend's no-numpy fallback.

    Returns a :class:`~repro.sim.stats.CoRunResult`: one SimStats per
    core plus the shared-level interference summary.  With
    ``solo_baseline`` (the default), each cell is additionally run alone
    through the single-core engine — those runs ride the trace store and
    fast path, so they are cheap relative to the co-run itself — to
    report per-core slowdown, its geometric mean, and Jain's fairness
    index over relative speeds.  ``solo_baseline=False`` skips them (the
    perf-bench smoke case measures stepping cost only).
    """
    # Late imports: runner imports spec, and multicore_fused imports us.
    from repro.sim.runner import execute, resolve_corun_backend

    backend = resolve_corun_backend(getattr(spec, "backend", "auto"))
    if backend == "fused":
        from repro.sim.multicore_fused import (
            FusedMultiCoreSimulator, supports,
        )

        if supports(spec.machine_config()):
            simulator = FusedMultiCoreSimulator(spec)
        else:
            simulator = MultiCoreSimulator(spec)
    else:
        simulator = MultiCoreSimulator(spec)
    simulator.run()
    core_stats = simulator.results()
    shared = simulator.shared
    busy = shared.dram.core_busy_cycles
    total_busy = sum(busy)
    summary = {
        "n_cores": spec.n_cores,
        "bandwidth_share": [
            (cycles / total_busy) if total_busy else 0.0
            for cycles in busy
        ],
        "core_dram_busy_cycles": list(busy),
        "interference": shared.interference.snapshot(),
        "cross_core_pollution": shared.interference.cross_core_pollution(),
        "l2": shared.l2.stats.snapshot(),
        "dram_row_hit_rate": shared.dram.stats.row_hit_rate,
        "mshr": {
            "stalls": shared.mshrs.stalls,
            "merges": shared.mshrs.merges,
            "allocations": shared.mshrs.allocations,
        },
    }
    if solo_baseline:
        solo_cycles = [execute(cell).cycles for cell in spec.cells]
        slowdowns = [
            (stats.cycles / solo) if solo else 0.0
            for stats, solo in zip(core_stats, solo_cycles)
        ]
        speeds = [(1.0 / s) if s > 0 else 0.0 for s in slowdowns]
        summary["solo_cycles"] = solo_cycles
        summary["slowdowns"] = slowdowns
        summary["geomean_slowdown"] = geometric_mean(slowdowns)
        summary["fairness"] = jain_fairness(speeds)
    return CoRunResult(core_stats, summary)
