"""Persistent, content-keyed cache of simulation results.

Each entry is one JSON file named by the RunSpec's content digest salted
with the package version, so a cached result is returned only for an
*identical* spec under an *identical* simulator version — bumping
``repro.__version__`` invalidates every entry at once.

The default cache directory is ``.repro-cache`` under the current working
directory; override it with the ``cache_dir`` argument or the
``REPRO_CACHE_DIR`` environment variable.  Entries are written atomically
(temp file + rename), and unreadable or corrupt entries behave as misses.
"""

import json
import os
import pathlib
import tempfile

from repro.sim.stats import SimStats

#: Environment variable naming the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"


def _version_salt():
    import repro  # late: repro's package init imports repro.sim
    return "repro-%s" % repro.__version__


class ResultCache:
    """Disk-backed {RunSpec digest: SimStats} mapping."""

    def __init__(self, cache_dir=None):
        if cache_dir is None:
            cache_dir = os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)
        self.cache_dir = pathlib.Path(cache_dir)
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def path_for(self, spec):
        """The entry file a spec maps to (may not exist)."""
        return self.cache_dir / ("%s.json" % spec.digest(_version_salt()))

    def get(self, spec):
        """Return the cached SimStats for ``spec``, or None on a miss."""
        path = self.path_for(spec)
        try:
            payload = json.loads(path.read_text())
            stats = SimStats.from_dict(payload["stats"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return stats

    def put(self, spec, stats):
        """Store one result.  Atomic: readers never see partial entries."""
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": _version_salt(),
            "spec": spec.to_dict(),
            "stats": stats.to_dict(),
        }
        fd, tmp = tempfile.mkstemp(dir=str(self.cache_dir), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp, self.path_for(spec))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    def __len__(self):
        try:
            return sum(1 for _ in self.cache_dir.glob("*.json"))
        except OSError:
            return 0

    def clear(self):
        """Delete every cache entry (the directory itself is kept)."""
        for path in self.cache_dir.glob("*.json"):
            try:
                path.unlink()
            except OSError:
                pass

    def __repr__(self):
        return "ResultCache(%r, %d entries, %d hits, %d misses)" % (
            str(self.cache_dir), len(self), self.hits, self.misses,
        )
