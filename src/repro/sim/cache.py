"""Persistent, content-keyed cache of simulation results.

Each entry is one JSON file named by the RunSpec's content digest salted
with the package version, so a cached result is returned only for an
*identical* spec under an *identical* simulator version — bumping
``repro.__version__`` invalidates every entry at once.

The default cache directory is ``.repro-cache`` under the current working
directory; override it with the ``cache_dir`` argument or the
``REPRO_CACHE_DIR`` environment variable.  Entries are written atomically
(temp file + rename).  A *missing* entry is a plain miss; an entry that
exists but cannot be parsed (truncated write, disk corruption, an
injected ``corrupt`` fault) is **quarantined** — moved aside into
``<cache_dir>/quarantine/`` with a logged warning — and then treated as
a miss, so one bad file costs one recomputation instead of poisoning
every later sweep or propagating an exception into the batch runner.

Concurrent clients
------------------
The cache directory may be shared by many processes at once — batch
workers, supervised sweeps, and every worker of a ``repro.serve`` HTTP
front end.  Safety rests on two mechanisms:

* **Atomic replace.**  Every mutation of an entry file (fresh write,
  quarantine move) goes through ``os.replace`` of a same-directory temp
  file, so a reader sees either the complete old bytes or the complete
  new bytes, never a torn mix.  Two writers racing on the same entry is
  last-write-wins, which is harmless: equal specs produce equal results.
* **An advisory cross-process lock** (:class:`FileLock` on
  ``<cache_dir>/.lock``) serializing *mutations* — writes and
  quarantine moves.  This closes the one genuinely destructive race:
  a reader deciding an entry is corrupt while a writer is concurrently
  replacing it with a good one could otherwise quarantine the fresh
  entry.  Under the lock the reader re-parses before moving anything,
  so a healthy entry is never quarantined.  Readers take no lock.

The lock uses ``fcntl.flock`` where available and silently degrades to
a no-op elsewhere (e.g. Windows, or exotic filesystems where ``fcntl``
raises): with no lock the atomic-replace guarantees above still hold —
the only regression is the narrow quarantine-vs-rewrite race, whose
worst case is one spurious recomputation, and the quarantine machinery
already tolerates exactly that.
"""

import json
import logging
import os
import pathlib
import tempfile
import threading

try:  # POSIX advisory locking; absent on some platforms.
    import fcntl
except ImportError:  # pragma: no cover - exercised only off-POSIX
    fcntl = None

from repro.sim.stats import result_from_dict

log = logging.getLogger(__name__)

#: Environment variable naming the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

#: Subdirectory (under the cache dir) where corrupt entries are parked.
QUARANTINE_DIR = "quarantine"

#: Lock file (under the cache dir) serializing cross-process mutations.
LOCK_FILE = ".lock"


class FileLock:
    """Advisory cross-process mutex over a lock file.

    ``with FileLock(path):`` holds an exclusive ``fcntl.flock`` on
    ``path`` (created on first use), nested inside a process-level
    ``threading.RLock``: threads of one process serialize on the RLock
    (flock would not distinguish them — the kernel locks per open file,
    and a second flock on the same handle succeeds immediately), and
    distinct processes serialize on the flock.  Reentrant in both
    layers, so nested cache operations cannot self-deadlock.

    Where ``fcntl`` is unavailable (non-POSIX platforms) or the
    filesystem rejects it, the cross-process layer degrades to a no-op:
    see the module docstring for why correctness survives — atomic
    replace alone keeps readers consistent, and the unguarded
    quarantine race costs at most one spurious recomputation.
    """

    def __init__(self, path):
        self.path = str(path)
        self._handle = None
        self._depth = 0
        self._thread_lock = threading.RLock()

    def acquire(self):
        """Take the exclusive lock (blocking); no-op without fcntl."""
        self._thread_lock.acquire()
        self._depth += 1
        if self._depth > 1 or fcntl is None:
            return
        try:
            os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
            self._handle = open(self.path, "a+")
            fcntl.flock(self._handle.fileno(), fcntl.LOCK_EX)
        except OSError:  # pragma: no cover - fs without flock support
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:
                    pass
            self._handle = None

    def release(self):
        """Drop the lock once the outermost holder exits."""
        self._depth -= 1
        if self._depth == 0 and self._handle is not None:
            try:
                fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
            except OSError:  # pragma: no cover
                pass
            try:
                self._handle.close()
            except OSError:  # pragma: no cover
                pass
            self._handle = None
        self._thread_lock.release()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc):
        self.release()
        return False


def version_salt():
    """The version string mixed into every entry digest.

    Bumping ``repro.__version__`` changes the salt, which changes every
    entry's file name — i.e. a whole-cache invalidation.  The sweep
    supervisor keys its checkpoint journal with the same salt so stale
    journals invalidate in lockstep.
    """
    import repro  # late: repro's package init imports repro.sim
    return "repro-%s" % repro.__version__


#: Backwards-compatible alias (pre-1.4 internal name).
_version_salt = version_salt


class ResultCache:
    """Disk-backed {RunSpec digest: SimStats} mapping."""

    def __init__(self, cache_dir=None):
        if cache_dir is None:
            cache_dir = os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)
        self.cache_dir = pathlib.Path(cache_dir)
        self.hits = 0
        self.misses = 0
        self.quarantined = 0
        self.lock = FileLock(self.cache_dir / LOCK_FILE)

    # ------------------------------------------------------------------
    def path_for(self, spec):
        """The entry file a spec maps to (may not exist)."""
        return self.cache_dir / ("%s.json" % spec.digest(version_salt()))

    def path_for_digest(self, digest):
        """The entry file a precomputed digest maps to (may not exist).

        The digest-addressed twin of :meth:`path_for`, for callers that
        hold only the content hash — the ``repro.serve`` result endpoint
        resolves ``GET /results/<digest>`` through this.
        """
        return self.cache_dir / ("%s.json" % digest)

    def get(self, spec):
        """Return the cached SimStats for ``spec``, or None on a miss.

        A present-but-unparseable entry is quarantined (see
        :meth:`_quarantine`) and reported as a miss, so the caller simply
        recomputes — corruption never propagates as an exception.
        """
        stats = self._read(self.path_for(spec))
        if stats is None:
            self.misses += 1
            return None
        self.hits += 1
        return stats

    def get_digest(self, digest):
        """Like :meth:`get`, keyed by a precomputed entry digest.

        Returns the rehydrated result or None; corrupt entries are
        quarantined exactly as in :meth:`get`.  Hit/miss counters tick
        the same way, so ``repro.serve`` result lookups show up in the
        cache statistics.
        """
        stats = self._read(self.path_for_digest(digest))
        if stats is None:
            self.misses += 1
            return None
        self.hits += 1
        return stats

    def _read(self, path):
        """Parse one entry file; quarantine-and-None when unparseable."""
        try:
            text = path.read_text()
        except OSError:
            return None
        try:
            payload = json.loads(text)
            return result_from_dict(payload["stats"])
        except (ValueError, KeyError, TypeError) as exc:
            return self._quarantine(path, exc)

    def _quarantine(self, path, exc):
        """Move a corrupt entry into ``quarantine/`` and log it.

        Runs under the cross-process :class:`FileLock` and re-parses the
        entry first: if a concurrent writer has already replaced the
        corrupt bytes with a good entry, that entry is returned instead
        of being quarantined — a healthy result is never moved aside.
        The corrupt file itself is preserved (not deleted) so the
        corruption can be inspected post-mortem; if even the move fails
        the entry is unlinked as a last resort so it cannot shadow a
        fresh write.  Returns the re-parsed result or None.
        """
        with self.lock:
            try:
                payload = json.loads(path.read_text())
                return result_from_dict(payload["stats"])
            except OSError:
                return None  # already quarantined/overwritten by another
            except (ValueError, KeyError, TypeError):
                pass  # still corrupt under the lock: quarantine it
            self.quarantined += 1
            log.warning("quarantining corrupt cache entry %s (%s: %s); "
                        "the result will be recomputed",
                        path.name, type(exc).__name__, exc)
            target = self.cache_dir / QUARANTINE_DIR / path.name
            try:
                target.parent.mkdir(parents=True, exist_ok=True)
                os.replace(str(path), str(target))
            except OSError:
                try:
                    path.unlink()
                except OSError:
                    pass
            return None

    def put(self, spec, stats):
        """Store one result.  Atomic: readers never see partial entries.

        The temp file lives in the cache directory itself so
        ``os.replace`` is a same-filesystem rename; the write happens
        under the cross-process :class:`FileLock` so it cannot interleave
        with a quarantine move of the same entry.
        """
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": version_salt(),
            "spec": spec.to_dict(),
            "stats": stats.to_dict(),
        }
        with self.lock:
            fd, tmp = tempfile.mkstemp(dir=str(self.cache_dir),
                                       suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(payload, handle, sort_keys=True)
                os.replace(tmp, self.path_for(spec))
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise

    # ------------------------------------------------------------------
    def __len__(self):
        try:
            return sum(1 for _ in self.cache_dir.glob("*.json"))
        except OSError:
            return 0

    def clear(self):
        """Delete every cache entry (the directory itself is kept)."""
        for path in self.cache_dir.glob("*.json"):
            try:
                path.unlink()
            except OSError:
                pass

    def __repr__(self):
        return ("ResultCache(%r, %d entries, %d hits, %d misses, "
                "%d quarantined)" % (
                    str(self.cache_dir), len(self), self.hits, self.misses,
                    self.quarantined,
                ))
