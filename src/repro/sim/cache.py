"""Persistent, content-keyed cache of simulation results.

Each entry is one JSON file named by the RunSpec's content digest salted
with the package version, so a cached result is returned only for an
*identical* spec under an *identical* simulator version — bumping
``repro.__version__`` invalidates every entry at once.

The default cache directory is ``.repro-cache`` under the current working
directory; override it with the ``cache_dir`` argument or the
``REPRO_CACHE_DIR`` environment variable.  Entries are written atomically
(temp file + rename).  A *missing* entry is a plain miss; an entry that
exists but cannot be parsed (truncated write, disk corruption, an
injected ``corrupt`` fault) is **quarantined** — moved aside into
``<cache_dir>/quarantine/`` with a logged warning — and then treated as
a miss, so one bad file costs one recomputation instead of poisoning
every later sweep or propagating an exception into the batch runner.
"""

import json
import logging
import os
import pathlib
import tempfile

from repro.sim.stats import result_from_dict

log = logging.getLogger(__name__)

#: Environment variable naming the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

#: Subdirectory (under the cache dir) where corrupt entries are parked.
QUARANTINE_DIR = "quarantine"


def version_salt():
    """The version string mixed into every entry digest.

    Bumping ``repro.__version__`` changes the salt, which changes every
    entry's file name — i.e. a whole-cache invalidation.  The sweep
    supervisor keys its checkpoint journal with the same salt so stale
    journals invalidate in lockstep.
    """
    import repro  # late: repro's package init imports repro.sim
    return "repro-%s" % repro.__version__


#: Backwards-compatible alias (pre-1.4 internal name).
_version_salt = version_salt


class ResultCache:
    """Disk-backed {RunSpec digest: SimStats} mapping."""

    def __init__(self, cache_dir=None):
        if cache_dir is None:
            cache_dir = os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)
        self.cache_dir = pathlib.Path(cache_dir)
        self.hits = 0
        self.misses = 0
        self.quarantined = 0

    # ------------------------------------------------------------------
    def path_for(self, spec):
        """The entry file a spec maps to (may not exist)."""
        return self.cache_dir / ("%s.json" % spec.digest(version_salt()))

    def get(self, spec):
        """Return the cached SimStats for ``spec``, or None on a miss.

        A present-but-unparseable entry is quarantined (see
        :meth:`_quarantine`) and reported as a miss, so the caller simply
        recomputes — corruption never propagates as an exception.
        """
        path = self.path_for(spec)
        try:
            text = path.read_text()
        except OSError:
            self.misses += 1
            return None
        try:
            payload = json.loads(text)
            stats = result_from_dict(payload["stats"])
        except (ValueError, KeyError, TypeError) as exc:
            self._quarantine(path, exc)
            self.misses += 1
            return None
        self.hits += 1
        return stats

    def _quarantine(self, path, exc):
        """Move a corrupt entry into ``quarantine/`` and log it.

        The file is preserved (not deleted) so the corruption can be
        inspected post-mortem; if even the move fails the entry is
        unlinked as a last resort so it cannot shadow a fresh write.
        """
        self.quarantined += 1
        log.warning("quarantining corrupt cache entry %s (%s: %s); "
                    "the result will be recomputed",
                    path.name, type(exc).__name__, exc)
        target = self.cache_dir / QUARANTINE_DIR / path.name
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(str(path), str(target))
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass

    def put(self, spec, stats):
        """Store one result.  Atomic: readers never see partial entries."""
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": version_salt(),
            "spec": spec.to_dict(),
            "stats": stats.to_dict(),
        }
        fd, tmp = tempfile.mkstemp(dir=str(self.cache_dir), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp, self.path_for(spec))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    def __len__(self):
        try:
            return sum(1 for _ in self.cache_dir.glob("*.json"))
        except OSError:
            return 0

    def clear(self):
        """Delete every cache entry (the directory itself is kept)."""
        for path in self.cache_dir.glob("*.json"):
            try:
                path.unlink()
            except OSError:
                pass

    def __repr__(self):
        return ("ResultCache(%r, %d entries, %d hits, %d misses, "
                "%d quarantined)" % (
                    str(self.cache_dir), len(self), self.hits, self.misses,
                    self.quarantined,
                ))
