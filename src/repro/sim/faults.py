"""Deterministic fault injection for the resilient sweep supervisor.

The recovery paths in :mod:`repro.sim.supervisor` — retry after a worker
crash, kill-and-retry after a hang, quarantine-and-recompute after cache
corruption — are only trustworthy if they are *exercised*, so this module
lets a test (or CI) force every failure mode on demand, deterministically.

A :class:`FaultPlan` is a list of :class:`FaultRule` entries.  Each rule
names a fault ``kind``, a glob ``match`` over the run's label
(``spec.label()``, e.g. ``"vpr/grp"``), and which ``attempts`` it fires
on (0-based), so "crash the first two attempts of this cell, then let it
succeed" is a three-line JSON document.  Rules may instead carry a
``rate``: the decision is then a pure hash of ``(seed, label, attempt)``
— random-looking but exactly reproducible, with no RNG state to leak
between processes.

Fault kinds:

``crash``
    the worker process SIGKILLs itself — an unclean death with no error
    message, exactly what OOM killers and segfaults look like from the
    supervisor's side;
``error``
    the worker raises :class:`FaultInjected` — the clean in-process
    failure path (bad input, assertion, bug);
``hang``
    the worker sleeps ``seconds`` before doing any work, so a configured
    per-worker timeout is the only way the sweep makes progress;
``corrupt``
    the *supervisor* truncates the cell's result-cache entry right after
    writing it, so the next read of that entry must take
    :class:`~repro.sim.cache.ResultCache`'s quarantine path.

Plans are env-gated: ``REPRO_FAULT_PLAN`` holds either inline JSON
(``{"faults": [...]}``) or the path of a JSON file.  Workers never read
the environment themselves — the supervisor ships the plan inside each
worker payload, so the decision is identical under any multiprocessing
start method.
"""

import fnmatch
import hashlib
import json
import os
import signal
import time

#: Environment variable carrying a fault plan: inline JSON or a file path.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Every fault kind a rule may name.
FAULT_KINDS = ("crash", "error", "hang", "corrupt")


class FaultInjected(RuntimeError):
    """The exception an ``error`` fault raises inside a worker."""


class FaultRule:
    """One fault: kind + label match + when (attempt list or hash rate)."""

    def __init__(self, kind, match="*", attempts=(0,), rate=None, seed=0,
                 seconds=3600.0):
        if kind not in FAULT_KINDS:
            raise ValueError(
                "unknown fault kind %r (have: %s)"
                % (kind, ", ".join(FAULT_KINDS)))
        self.kind = kind
        self.match = match
        self.attempts = tuple(attempts)
        self.rate = rate
        self.seed = seed
        self.seconds = seconds

    # ------------------------------------------------------------------
    def applies(self, label, attempt):
        """Does this rule fire for (label, attempt)?  Pure + deterministic."""
        if not fnmatch.fnmatchcase(label, self.match):
            return False
        if self.rate is not None:
            digest = hashlib.sha256(
                ("%s|%s|%d" % (self.seed, label, attempt)).encode("utf-8")
            ).hexdigest()
            return int(digest[:8], 16) / float(0xFFFFFFFF) < self.rate
        return attempt in self.attempts

    def to_dict(self):
        """Plain-data form (the JSON the env var / payload carries)."""
        out = {"kind": self.kind, "match": self.match,
               "attempts": list(self.attempts)}
        if self.rate is not None:
            out["rate"] = self.rate
            out["seed"] = self.seed
        if self.kind == "hang":
            out["seconds"] = self.seconds
        return out

    @classmethod
    def from_dict(cls, data):
        """Inverse of :meth:`to_dict` (unknown keys rejected loudly)."""
        known = {"kind", "match", "attempts", "rate", "seed", "seconds"}
        extra = set(data) - known
        if extra:
            raise ValueError("unknown fault-rule keys: %s"
                             % ", ".join(sorted(extra)))
        return cls(
            data["kind"],
            match=data.get("match", "*"),
            attempts=tuple(data.get("attempts", (0,))),
            rate=data.get("rate"),
            seed=data.get("seed", 0),
            seconds=data.get("seconds", 3600.0),
        )

    def __repr__(self):
        return "FaultRule(%s, match=%r, attempts=%r, rate=%r)" % (
            self.kind, self.match, self.attempts, self.rate)


class FaultPlan:
    """A deterministic set of :class:`FaultRule` entries."""

    def __init__(self, rules=()):
        self.rules = list(rules)

    # -- construction --------------------------------------------------
    @classmethod
    def from_dict(cls, data):
        """Build from ``{"faults": [rule, ...]}`` (or a bare rule list)."""
        if isinstance(data, dict):
            data = data.get("faults", [])
        return cls([FaultRule.from_dict(entry) for entry in data])

    def to_dict(self):
        """Plain-data form, the inverse of :meth:`from_dict`."""
        return {"faults": [rule.to_dict() for rule in self.rules]}

    @classmethod
    def from_env(cls, environ=None):
        """The plan ``$REPRO_FAULT_PLAN`` names, or None when unset.

        The value is inline JSON when it starts with ``{`` or ``[``,
        otherwise the path of a JSON file.
        """
        value = (environ or os.environ).get(FAULT_PLAN_ENV, "").strip()
        if not value:
            return None
        if value[0] in "{[":
            return cls.from_dict(json.loads(value))
        with open(value) as handle:
            return cls.from_dict(json.load(handle))

    # -- decisions -----------------------------------------------------
    def _firing(self, label, attempt, kinds):
        return [rule for rule in self.rules
                if rule.kind in kinds and rule.applies(label, attempt)]

    def inject(self, label, attempt):
        """Apply worker-side faults for this (label, attempt), if any.

        Called at the top of every supervised worker attempt.  ``hang``
        sleeps first (so a configured timeout kills the worker), then
        ``crash`` SIGKILLs the process, then ``error`` raises — a rule
        set stacking several kinds applies them in that order.
        """
        for rule in self._firing(label, attempt, ("hang",)):
            time.sleep(rule.seconds)
        if self._firing(label, attempt, ("crash",)):
            os.kill(os.getpid(), signal.SIGKILL)
        if self._firing(label, attempt, ("error",)):
            raise FaultInjected(
                "injected error fault for %s attempt %d" % (label, attempt))

    def corrupts(self, label):
        """Should the supervisor corrupt this cell's cache entry?"""
        return bool(self._firing(label, 0, ("corrupt",)))

    def __len__(self):
        return len(self.rules)

    def __repr__(self):
        return "FaultPlan(%r)" % (self.rules,)


def corrupt_file(path):
    """Overwrite ``path`` with a truncated-JSON payload (corrupt fault).

    The content mimics a write cut off mid-entry — valid UTF-8, invalid
    JSON — which is what a full disk or a killed writer leaves behind
    when atomic replacement is bypassed.
    """
    with open(path, "w") as handle:
        handle.write('{"version": "truncated-by-fault-injection", "sta')
