"""Simulation statistics: the metrics the paper's tables report.

* **IPC / speedup** — instructions per cycle from the core model; speedups
  are computed against the no-prefetching run of the same workload.
* **Traffic** — total DRAM bytes moved (demand + prefetch + writeback),
  the quantity Figure 12 and Table 5 normalize.
* **Coverage** — percentage reduction in demand fetches that reach DRAM,
  versus the no-prefetching baseline (the paper uses the reduction in L2
  misses; demand DRAM fetches are the same events seen from below).
* **Accuracy** — fraction of prefetched blocks referenced before eviction,
  counting never-referenced residents as useless.
"""

import json

#: Every serialized field of a run result, in stable order.  ``l1``,
#: ``l2``, ``hier``, and ``prefetcher`` are plain-dict snapshots; the rest
#: are scalars.
RESULT_FIELDS = (
    "workload", "scheme", "instructions", "cycles", "ipc",
    "load_stall_cycles", "l1", "l2", "hier",
    "dram_demand_blocks", "dram_prefetch_blocks", "dram_writeback_blocks",
    "row_hit_rate", "traffic_bytes", "prefetch_accuracy", "prefetcher",
    "metrics", "adapt",
)


class SimStats:
    """A bundle of results from one simulation run.

    Also the pipeline's **RunResult**: :meth:`to_dict`/:meth:`from_dict`
    round-trip it losslessly through JSON, so results cross process
    boundaries (the batch worker pool) and disk boundaries (the
    persistent result cache).
    """

    #: Successful result (RunFailure slots carry ``ok = False``).
    ok = True

    def __init__(self, workload, scheme, core, hierarchy):
        self.workload = workload
        self.scheme = scheme
        self.instructions = core.instructions
        self.cycles = core.cycles
        self.ipc = core.ipc
        self.load_stall_cycles = core.load_stall_cycles
        self.l1 = hierarchy.l1.stats.snapshot()
        # The L2/DRAM numbers go through the hierarchy's stats views: the
        # shared counters for a private single-core stack (unchanged), the
        # per-core attribution slice inside a multi-core co-run.
        self.l2 = hierarchy.l2_stats_view().snapshot()
        self.hier = hierarchy.stats.snapshot()
        dram = hierarchy.dram_stats_view()
        self.dram_demand_blocks = dram.demand_blocks
        self.dram_prefetch_blocks = dram.prefetch_blocks
        self.dram_writeback_blocks = dram.writeback_blocks
        self.row_hit_rate = dram.row_hit_rate
        self.traffic_bytes = hierarchy.traffic_bytes()
        self.prefetch_accuracy = hierarchy.prefetch_accuracy()
        self.prefetcher = (
            hierarchy.prefetcher.stats_snapshot()
            if hierarchy.prefetcher is not None
            else {}
        )
        # The observability layer's snapshot: timeliness, pollution, DRAM
        # utilization, MSHR/queue summaries and the interval time series.
        self.metrics = hierarchy.metrics.snapshot()
        # The adaptive control plane's snapshot (epoch count, knob
        # trajectory, final knob settings); {} for static schemes.
        adapt = getattr(hierarchy, "adapt", None)
        self.adapt = adapt.snapshot() if adapt is not None else {}

    # ------------------------------------------------------------------
    def to_dict(self):
        """Plain-data form: JSON-serializable, loss-free (see from_dict)."""
        out = {}
        for name in RESULT_FIELDS:
            value = getattr(self, name)
            out[name] = dict(value) if isinstance(value, dict) else value
        return out

    @classmethod
    def from_dict(cls, data):
        """Rebuild a SimStats from :meth:`to_dict` output.

        Accepts data that passed through JSON, which stringifies int dict
        keys — the prefetcher's ``region_size_histogram`` (keyed by region
        size in blocks) is restored to int keys here.
        """
        stats = object.__new__(cls)
        for name in RESULT_FIELDS:
            value = data[name]
            setattr(stats, name, dict(value) if isinstance(value, dict)
                    else value)
        histogram = stats.prefetcher.get("region_size_histogram")
        if histogram is not None:
            stats.prefetcher["region_size_histogram"] = {
                int(k): v for k, v in histogram.items()
            }
        return stats

    # ------------------------------------------------------------------
    @property
    def l2_miss_rate(self):
        return self.l2["miss_rate"]

    # -- metrics accessors (observability layer) -----------------------
    def _metric(self, group, key, default=0):
        return self.metrics.get(group, {}).get(key, default)

    @property
    def timely_prefetches(self):
        return self._metric("timeliness", "timely")

    @property
    def late_prefetches(self):
        return self._metric("timeliness", "late")

    @property
    def useless_evicted_prefetches(self):
        return self._metric("timeliness", "useless_evicted")

    @property
    def never_referenced_prefetches(self):
        return self._metric("timeliness", "never_referenced")

    @property
    def pollution_misses(self):
        return self._metric("pollution", "pollution_misses")

    @property
    def mean_channel_utilization(self):
        return self._metric("dram", "mean_channel_utilization", 0.0)

    @property
    def l2_demand_misses(self):
        return self.l2["demand_misses"]

    def speedup_over(self, baseline):
        """IPC ratio versus a baseline run of the same workload."""
        if baseline.ipc == 0:
            return 0.0
        return self.ipc / baseline.ipc

    def traffic_ratio_over(self, baseline):
        """Traffic normalized to a baseline run of the same workload."""
        if baseline.traffic_bytes == 0:
            return 0.0
        return self.traffic_bytes / baseline.traffic_bytes

    def coverage_over(self, baseline):
        """Fractional reduction in demand DRAM fetches vs the baseline.

        Can be negative when prefetching pollutes the cache and *causes*
        demand fetches (the paper's ammp rows show exactly that).
        """
        if baseline.dram_demand_blocks == 0:
            return 0.0
        return 1.0 - self.dram_demand_blocks / baseline.dram_demand_blocks

    # ------------------------------------------------------------------
    def summary(self):
        """Compact dict for table generation."""
        return {
            "workload": self.workload,
            "scheme": self.scheme,
            "status": "ok",
            "instructions": self.instructions,
            "cycles": self.cycles,
            "ipc": self.ipc,
            "l2_miss_rate": self.l2_miss_rate,
            "l2_demand_misses": self.l2_demand_misses,
            "traffic_bytes": self.traffic_bytes,
            "prefetch_accuracy": self.prefetch_accuracy,
            "dram_demand_blocks": self.dram_demand_blocks,
            "dram_prefetch_blocks": self.dram_prefetch_blocks,
            "timely_prefetches": self.timely_prefetches,
            "late_prefetches": self.late_prefetches,
            "useless_evicted_prefetches": self.useless_evicted_prefetches,
            "never_referenced_prefetches": self.never_referenced_prefetches,
            "pollution_misses": self.pollution_misses,
            "mean_channel_utilization": self.mean_channel_utilization,
            # Multi-core identification: blank for single-core rows; a
            # CoRunResult's summary_rows() overwrites both per core.
            "core": "",
            "corun": "",
        }

    def __repr__(self):
        return "SimStats(%s/%s ipc=%.3f missrate=%.3f traffic=%dB)" % (
            self.workload, self.scheme, self.ipc, self.l2_miss_rate,
            self.traffic_bytes,
        )


#: The run pipeline's name for a run's outcome.  ``execute(spec)`` returns
#: a RunResult; SimStats is the concrete type.
RunResult = SimStats


class RunFailure:
    """Structured record of a run that failed permanently.

    The resilient sweep supervisor degrades gracefully: a cell that
    exhausts its retry budget still occupies its RunResult slot, as a
    RunFailure instead of a :class:`SimStats`, so a sweep completes and
    its tables render the surviving cells.  Callers distinguish the two
    with the ``ok`` attribute; like SimStats, a failure round-trips
    through JSON (:meth:`to_dict` carries a ``"failed": True`` marker —
    see :func:`result_from_dict`) and renders a CSV row under the stable
    export schema with a ``failed:<kind>`` status.
    """

    ok = False

    def __init__(self, workload, scheme, label=None, kind="error",
                 error="", attempts=0):
        self.workload = workload
        self.scheme = scheme
        self.label = label or "%s/%s" % (workload, scheme)
        #: Failure mode: ``crash`` (worker died), ``timeout`` (killed at
        #: the per-worker deadline), ``error`` (worker raised), or
        #: ``aborted`` (sweep hit its failure budget mid-flight).
        self.kind = kind
        self.error = error
        self.attempts = attempts

    # ------------------------------------------------------------------
    def to_dict(self):
        """Plain-data form; the ``failed`` key marks it as a failure."""
        return {
            "failed": True,
            "workload": self.workload,
            "scheme": self.scheme,
            "label": self.label,
            "kind": self.kind,
            "error": self.error,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, data):
        """Inverse of :meth:`to_dict`."""
        return cls(
            workload=data["workload"],
            scheme=data["scheme"],
            label=data.get("label"),
            kind=data.get("kind", "error"),
            error=data.get("error", ""),
            attempts=data.get("attempts", 0),
        )

    def summary(self):
        """Identification + status only; metric columns stay blank."""
        return {
            "workload": self.workload,
            "scheme": self.scheme,
            "status": "failed:%s" % self.kind,
        }

    def __repr__(self):
        return "RunFailure(%s %s after %d attempt(s): %s)" % (
            self.label, self.kind, self.attempts, self.error or "-")


class CoRunResult:
    """The result of one multi-core co-run.

    ``cores`` is one :class:`SimStats` per core (each scoped to that
    core's attribution slice of the shared levels); ``shared`` is the
    interference summary of the contended memory system — per-core
    slowdown versus the solo baseline, the fairness index, cross-core
    pollution/eviction counts, and the DRAM bandwidth split.  Like
    SimStats it is JSON-lossless (``to_dict``/``from_dict``) and rides
    the batch pool, result cache, and sweep supervisor via the
    ``"corun"`` marker :func:`result_from_dict` dispatches on.
    """

    ok = True

    def __init__(self, cores, shared):
        self.cores = list(cores)
        self.shared = dict(shared)

    # ------------------------------------------------------------------
    @property
    def n_cores(self):
        """Number of cores in the co-run."""
        return len(self.cores)

    @property
    def workload(self):
        """Combined workload label (matches ``CoRunSpec.workload``)."""
        return "+".join(stats.workload for stats in self.cores)

    @property
    def scheme(self):
        """Shared scheme name, or the per-core join when they differ."""
        schemes = [stats.scheme for stats in self.cores]
        if all(s == schemes[0] for s in schemes):
            return schemes[0]
        return "+".join(schemes)

    @property
    def cycles(self):
        """Co-run makespan: the slowest core's cycle count."""
        return max(stats.cycles for stats in self.cores)

    @property
    def fairness(self):
        """Jain's fairness index over per-core speeds (1.0 = fair)."""
        return self.shared.get("fairness", 0.0)

    @property
    def slowdowns(self):
        """Per-core slowdown versus the solo baseline (1.0 = no loss)."""
        return self.shared.get("slowdowns", [])

    # ------------------------------------------------------------------
    def to_dict(self):
        """Plain-data form; the ``corun`` key marks the result kind."""
        return {
            "corun": True,
            "cores": [stats.to_dict() for stats in self.cores],
            "shared": dict(self.shared),
        }

    @classmethod
    def from_dict(cls, data):
        """Inverse of :meth:`to_dict`."""
        return cls(
            cores=[SimStats.from_dict(core) for core in data["cores"]],
            shared=data.get("shared", {}),
        )

    def summary_rows(self):
        """One export row per core (the CSV layer flattens co-runs).

        Each row is the core's ordinary :meth:`SimStats.summary` plus the
        ``core`` index and the ``corun`` mix label, so single-core rows
        (which leave both blank) and co-run rows share one schema.
        """
        mix = self.workload
        slowdowns = self.shared.get("slowdowns") or []
        rows = []
        for i, stats in enumerate(self.cores):
            row = stats.summary()
            row["core"] = i
            row["corun"] = mix
            if i < len(slowdowns):
                row["slowdown"] = slowdowns[i]
            rows.append(row)
        return rows

    def __repr__(self):
        return "CoRunResult(%s/%s cores=%d fairness=%.3f)" % (
            self.workload, self.scheme, self.n_cores, self.fairness)


def result_to_json(result):
    """Canonical JSON wire form of a RunResult/CoRunResult/RunFailure.

    One encoder shared by every consumer-facing surface — the
    ``--json`` mode of ``python -m repro.sim`` and the ``repro.serve``
    ``GET /results/<digest>`` endpoint — so CLI and API consumers see
    *byte-identical* payloads for the same run: sorted keys, compact
    separators, no trailing newline.  The inverse is
    :func:`result_from_dict` over ``json.loads``.
    """
    return json.dumps(result.to_dict(), sort_keys=True,
                      separators=(",", ":"))


def result_from_dict(data):
    """Rehydrate a serialized RunResult slot.

    The inverse of ``result.to_dict()`` for every concrete result type —
    exports and the supervisor's checkpoint journal dispatch on the
    ``failed`` marker :meth:`RunFailure.to_dict` plants and the ``corun``
    marker :meth:`CoRunResult.to_dict` plants; everything else is a
    single-core :class:`SimStats`.
    """
    if data.get("failed"):
        return RunFailure.from_dict(data)
    if data.get("corun"):
        return CoRunResult.from_dict(data)
    return SimStats.from_dict(data)


def geometric_mean(values):
    """Geometric mean of positive values; 0.0 for an empty sequence."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    product = 1.0
    for v in vals:
        product *= v
    return product ** (1.0 / len(vals))
