"""Simulation harness: machine configuration, statistics, and the runner."""

from repro.sim.config import MachineConfig
from repro.sim.stats import SimStats
from repro.sim.simulator import Simulator
from repro.sim.runner import SCHEMES, run_workload

__all__ = ["MachineConfig", "SCHEMES", "SimStats", "Simulator", "run_workload"]
