"""Simulation harness: the RunSpec → engine → RunResult pipeline.

* :class:`~repro.sim.spec.RunSpec` — frozen, hashable description of one
  run (workload, scheme, mode, policy, config, scale, seed, limit_refs).
* :func:`~repro.sim.runner.execute` — the engine: RunSpec in, RunResult
  (:class:`~repro.sim.stats.SimStats`) out.
* :func:`~repro.sim.batch.run_batch` — fan a list of RunSpecs across
  cores with deterministic result ordering.
* :class:`~repro.sim.cache.ResultCache` — persistent, content-keyed JSON
  cache of results.
* :class:`~repro.sim.supervisor.SweepSupervisor` — resilient sweeps:
  checkpoint/resume, per-worker timeouts, bounded retries, graceful
  degradation into :class:`~repro.sim.stats.RunFailure` slots.
"""

from repro.sim.batch import run_batch
from repro.sim.cache import ResultCache
from repro.sim.config import MachineConfig
from repro.sim.faults import FaultPlan
from repro.sim.runner import SCHEMES, execute, run_workload
from repro.sim.simulator import Simulator
from repro.sim.spec import RunSpec
from repro.sim.stats import RunFailure, RunResult, SimStats, result_from_dict
from repro.sim.supervisor import SweepAborted, SweepSupervisor

__all__ = [
    "FaultPlan", "MachineConfig", "ResultCache", "RunFailure", "RunResult",
    "RunSpec", "SCHEMES", "SimStats", "Simulator", "SweepAborted",
    "SweepSupervisor", "execute", "result_from_dict", "run_batch",
    "run_workload",
]
