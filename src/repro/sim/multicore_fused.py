"""Fused multi-core co-run replay: skip-ahead stretch scheduling.

The stepped reference loop (:class:`~repro.sim.multicore.MultiCoreSimulator`)
arbitrates before *every* trace event: scan all cores, pick the one whose
next instruction issues earliest, step it once through the out-of-line
``Hierarchy.access`` path.  That is obviously correct and cripplingly
slow — an 18-core rush-hour mix pays N comparisons plus a generator
resume plus the generic access path per event.

This module replaces the per-event dispatch with *stretches*:

1.  Arbitrate once with the **identical** round-robin scan (strict ``<``
    scanning from the core after the previous winner, so the previous
    winner is examined last and continues only on a strict minimum).
2.  Compute the *frontier* — the minimum ``next_issue_at`` over every
    other live core.  Those values are frozen while the winner runs:
    ``next_issue_at = max(clock, ring[head])`` is a pure function of the
    owning core's private state, and only the stepping core's state
    moves.  (Shared-level traffic changes what a *future* access of
    another core will cost, but never that core's already-queued issue
    front — exactly the property the stepped arbiter relies on.)
3.  Run the winner through consecutive events while its next issue time
    stays strictly below the frontier.  The first event after an
    arbitration runs unconditionally (the arbiter already chose this
    core for it); each subsequent event re-checks against the frontier,
    which is precisely the condition under which the stepped arbiter
    would have picked this core again (on ties the scan starting at
    ``rr = winner + 1`` prefers any *other* core at the same key, hence
    strict ``<`` here).
4.  After the stretch, ``rr = winner + 1`` — the same value per-event
    stepping leaves, because every event in the stretch had the same
    winner.

Within a stretch the per-event body is the single-core fast path:
compiled columnar traces (no event objects, no generator resumes), the
inlined L1 probe, inlined issue-ring arithmetic — the exact operation
sequence of ``Core.execute_compiled``'s non-general branch, which the
single-core differential suite pins against the event interpreter.

Two pieces of shared state are synchronized at stretch edges instead of
per event, each justified by monotonicity:

``shared.set_active(best)``
    Tags shared-level counters with the stepping core.  Constant for a
    whole stretch (one winner), so setting it once at stretch start is
    identical to setting it before every event.

SRP demand-busy watermark
    The stepped loop folds every controller's ``demand_busy_until`` into
    a global watermark around each step.  During a stretch only the
    winner's controller can advance (other cores execute nothing), so
    syncing the watermark *in* at stretch start and *out* at stretch end
    reproduces the per-event exchange exactly.

Configurations the inline body cannot replay exactly — TLB-enabled
machines, whose per-reference translation rides the out-of-line
``access`` path — are declined by :func:`supports`;
``execute_corun`` falls back to the stepped loop (a degradation, never
an error).  Co-run cells never carry a reference-mode hierarchy or a
trace sink, the other two general-path triggers.

The contract: for every :class:`~repro.sim.spec.CoRunSpec` both
backends accept, ``CoRunResult.to_dict()`` is byte-identical between
fused and stepped.  ``tests/test_multicore_fused.py`` enforces it over
the full pair matrix and the 18-core rush-hour mix.
"""

from repro.cpu.core import _directive_event
from repro.sim.multicore import MultiCoreSimulator
from repro.trace.compiled import K_OPS, K_STORE

_INF = float("inf")


def supports(config):
    """Whether the fused loop can replay co-runs of ``config`` exactly.

    The inline per-event body replicates ``Hierarchy.access`` for plain
    and perfect-L1/L2 machines; a TLB inserts per-reference translation
    before the L1 probe, which only the out-of-line path models.
    """
    return not getattr(config, "tlb_entries", 0)


class FusedMultiCoreSimulator(MultiCoreSimulator):
    """Skip-ahead replay of N compiled traces over shared memory.

    Subclasses the stepped simulator for construction (shared system,
    cells, results/summary plumbing) and replaces :meth:`run` with the
    stretch scheduler described in the module docstring.  Cells are
    built with compiled columnar traces instead of interpreter event
    streams.
    """

    COMPILED_CELLS = True

    def __init__(self, spec):
        config = spec.machine_config()
        if not supports(config):
            raise ValueError(
                "fused co-run backend cannot replay this config exactly "
                "(TLB enabled); use the stepped backend"
            )
        super().__init__(spec)

    def run(self):
        """Replay every core's trace to completion; finish the hierarchy.

        Byte-identical in every statistic to
        :meth:`MultiCoreSimulator.run` over the same spec.
        """
        cells = self.cells
        shared = self.shared
        n = len(cells)
        ctxs = []
        nias = []  # per-core next_issue_at frontier values
        live = []
        positions = [0] * n
        remaining = 0
        for cell in cells:
            core = cell.core
            hierarchy = cell.hierarchy
            trace = cell.trace
            if (hierarchy.reference or hierarchy.tlb is not None
                    or hierarchy.metrics.sink is not None):
                # supports() gates on the config; this guards the
                # invariant if a future hierarchy grows general-path
                # triggers the config does not expose.
                raise RuntimeError(
                    "fused co-run loop requires the inline access path")
            l1 = hierarchy.l1
            metrics = hierarchy.metrics
            adapt = getattr(hierarchy, "adapt", None)
            ctxs.append((
                trace.kinds, trace.f0, trace.f1, trace.f2,
                trace.resolve_hints(core.hint_table), trace.ref_names,
                core, core._ring, core.window, core.inv_width,
                hierarchy, hierarchy.controller,
                hierarchy._perfect_l1, l1.latency, l1._index, l1._sets,
                l1._block_shift, l1._set_mask, l1.stats, l1._shadow,
                hierarchy._block_mask, hierarchy.stats,
                metrics, metrics.series,
                hierarchy.controller.issue_prefetches,
                hierarchy._has_candidates,
                hierarchy.access_after_l1_miss,
                adapt.note_access if adapt is not None else None,
                len(trace.kinds),
            ))
            nias.append(core.next_issue_at())
            alive = len(trace.kinds) > 0
            live.append(alive)
            if alive:
                remaining += 1
        rr = 0
        watermark = 0
        while remaining:
            # Arbitration: the stepped loop's scan — strict < from rr,
            # so the previous winner (scanned last) continues only on a
            # strict minimum — extended to track the runner-up key in
            # the same pass.  The runner-up is the *frontier*: the
            # minimum next_issue_at over the other live cores, frozen
            # for the stretch (their state cannot move).  A core tying
            # the winner's key lands in the runner-up slot (strict <
            # again), so ties stop the stretch after one event, exactly
            # where the stepped arbiter would switch cores.  The sole
            # survivor sees an infinite frontier and runs to completion.
            best = -1
            best_key = _INF
            frontier = _INF
            for step in range(n):
                i = rr + step
                if i >= n:
                    i -= n
                if not live[i]:
                    continue
                key = nias[i]
                if key < best_key:
                    frontier = best_key
                    best = i
                    best_key = key
                elif key < frontier:
                    frontier = key
            (kinds, f0, f1, f2, hints, ref_names, core, ring, window,
             inv, hierarchy, controller, perfect_l1, l1_latency,
             l1_index, l1_sets, l1_shift, l1_set_mask, l1_stats,
             l1_shadow, block_mask, hstats, metrics, series,
             issue_prefetches, has_candidates, miss_path, note_access,
             n_events) = ctxs[best]
            shared.set_active(best)
            if watermark > controller.demand_busy_until:
                controller.demand_busy_until = watermark
            clock = core._clock
            head = core._head
            instructions = core.instructions
            load_stall = core.load_stall_cycles
            pos = positions[best]
            first = True
            try:
                while True:
                    e = ring[head]
                    # max(clock, ring[head]): first argument wins ties.
                    now = clock if clock >= e else e
                    if first:
                        # The arbiter already picked this core for the
                        # first event; run it unconditionally.
                        first = False
                    elif now >= frontier:
                        # Another core would win (or tie, and ties go
                        # away from the previous winner): re-arbitrate.
                        break
                    kind = kinds[pos]
                    if kind <= K_STORE:
                        is_store = kind == K_STORE
                        if perfect_l1:
                            if is_store:
                                hstats.stores += 1
                            else:
                                hstats.loads += 1
                            ready = now + l1_latency
                        else:
                            # Hierarchy.access, inlined to the L1 probe
                            # (Core.execute_compiled's exact body).
                            if is_store:
                                hstats.stores += 1
                            else:
                                hstats.loads += 1
                            if has_candidates is not None \
                                    and has_candidates():
                                issue_prefetches(now)
                            if now >= series._next:
                                metrics.tick(now)
                            block = f1[pos] & block_mask
                            line = l1_index.get(block)
                            if line is not None:
                                # Cache.access_block hit path, inlined.
                                l1_stats.demand_accesses += 1
                                lines = l1_sets[
                                    (block >> l1_shift) & l1_set_mask]
                                if lines[-1] is not line:
                                    lines.remove(line)
                                    lines.append(line)
                                if not line.referenced:
                                    line.referenced = True
                                    l1_stats.useful_prefetches += 1
                                if is_store:
                                    line.dirty = True
                                l1_stats.demand_hits += 1
                                ready = now + l1_latency
                            else:
                                l1_stats.demand_accesses += 1
                                l1_stats.demand_misses += 1
                                if l1_shadow and l1_shadow.pop(
                                        block, None) is not None:
                                    l1_stats.pollution_misses += 1
                                ridx = f0[pos]
                                ready = miss_path(
                                    block, f1[pos], now, is_store,
                                    ref_names[ridx], hints[ridx],
                                )
                        latency = ready - now
                        # _issue(latency), inlined; `before` is the
                        # pre-issue clock.
                        before = clock
                        c = clock + inv
                        if e > c:
                            c = e
                        clock = c
                        ring[head] = c + latency
                        head += 1
                        if head == window:
                            head = 0
                        instructions += 1
                        s = clock - before - inv
                        if s > 0.0:
                            load_stall += s
                        if note_access is not None:
                            note_access(clock)
                    elif kind == K_OPS:
                        count = f0[pos]
                        if count <= 32:
                            # _issue_ops' exact small-batch path.
                            for _ in range(count):
                                e = ring[head]
                                clock = clock + inv
                                if e > clock:
                                    clock = e
                                ring[head] = clock + 1.0
                                head += 1
                                if head == window:
                                    head = 0
                            instructions += count
                        else:
                            # _issue_ops' closed form (count > 32),
                            # inlined (same operations, same order).
                            base = clock
                            clock = base + count * inv
                            if max(ring) > base:
                                nn = count if count < window else window
                                slot = head
                                for d in range(nn):
                                    completion = ring[slot]
                                    if completion > base:
                                        candidate = completion \
                                            + (count - d) * inv
                                        if candidate > clock:
                                            clock = candidate
                                    slot += 1
                                    if slot == window:
                                        slot = 0
                            fill = clock + 1.0
                            if count >= window:
                                ring[:] = [fill] * window
                                head = 0
                            else:
                                end = head + count
                                if end <= window:
                                    ring[head:end] = [fill] * count
                                    head = 0 if end == window else end
                                else:
                                    ring[head:] = [fill] * (window - head)
                                    end -= window
                                    ring[:end] = [fill] * end
                                    head = end
                            instructions += count
                    else:
                        event = _directive_event(
                            kind, f0[pos], f1[pos], f2[pos])
                        # _issue(1.0), inlined.
                        e = ring[head]
                        c = clock + inv
                        if e > c:
                            c = e
                        clock = c
                        completion = c + 1.0
                        ring[head] = completion
                        head += 1
                        if head == window:
                            head = 0
                        instructions += 1
                        hierarchy.directive(event, completion)
                    pos += 1
                    if pos == n_events:
                        live[best] = False
                        remaining -= 1
                        break
            finally:
                core._clock = clock
                core._head = head
                core.instructions = instructions
                core.load_stall_cycles = load_stall
                positions[best] = pos
            e = ring[head]
            nias[best] = clock if clock >= e else e
            if controller.demand_busy_until > watermark:
                watermark = controller.demand_busy_until
            rr = best + 1
            if rr == n:
                rr = 0
        # Per-core finish in core-id order, identical to the stepped
        # loop: drain residual prefetch issue at each core's final
        # cycle, then finalize its metrics.
        for core_id, cell in enumerate(cells):
            shared.set_active(core_id)
            cell.hierarchy.finish(cell.core.cycles)
