"""RunSpec: a frozen, hashable, serializable description of one run.

A :class:`RunSpec` captures everything that determines a simulation's
outcome — workload, scheme, mode, compiler policy, machine configuration,
scale, seed, and trace length — as plain data.  Because it is immutable
and hashable it serves as a dictionary key (the in-memory memo in
:class:`~repro.experiments.common.ExperimentContext`), and because it
round-trips through :meth:`to_dict`/:meth:`from_dict` it crosses process
boundaries (the :mod:`repro.sim.batch` worker pool) and disk boundaries
(the :mod:`repro.sim.cache` persistent cache, which keys entries by
:meth:`digest`).

The machine configuration travels inside the spec as a canonical JSON
string (``config_json``) so the spec itself stays hashable; use
:meth:`machine_config` to rebuild the :class:`MachineConfig`.
"""

import hashlib
import json
from dataclasses import dataclass, field

from repro.mem.dram import DRAMConfig
from repro.sim.config import MachineConfig
from repro.workloads.base import get_workload

#: Every MachineConfig scalar parameter, in declaration order.  ``dram``
#: is handled separately (it is itself a parameter object).
MACHINE_FIELDS = (
    "l1_size", "l1_assoc", "l1_latency",
    "l2_size", "l2_assoc", "l2_latency",
    "block_size", "mshr_entries", "region_size",
    "prefetch_queue_size", "prefetch_queue_policy",
    "recursive_depth", "pointer_blocks",
    "issue_width", "window_size", "prefetch_insert",
    "adapt_epoch_accesses",
    "tlb_entries", "tlb_assoc", "tlb_page_size", "tlb_miss_latency",
)

DRAM_FIELDS = (
    "channels", "banks_per_channel", "row_size",
    "row_hit_latency", "row_miss_latency", "transfer_cycles",
    "block_size",
)


def config_to_dict(config):
    """Flatten a :class:`MachineConfig` (and its DRAMConfig) to plain data."""
    out = {name: getattr(config, name) for name in MACHINE_FIELDS}
    out["dram"] = {name: getattr(config.dram, name) for name in DRAM_FIELDS}
    return out


def config_from_dict(data):
    """Rebuild a :class:`MachineConfig` from :func:`config_to_dict` output."""
    params = dict(data)
    dram = params.pop("dram", None)
    if dram is not None:
        params["dram"] = DRAMConfig(**dram)
    return MachineConfig(**params)


def _canonical_json(data):
    """Deterministic JSON: sorted keys, no whitespace variance."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


#: Hierarchy modes a spec may name (``perfect_l1``/``perfect_l2`` are
#: the paper's idealized-cache ablations).
MODES = ("real", "perfect_l1", "perfect_l2")

#: Replay-backend names a spec may carry.  ``"auto"`` defers the choice
#: to the runner (``REPRO_BACKEND`` env var, else vectorized when numpy
#: is available); the other two pin it.  The backend participates in
#: :meth:`RunSpec.to_dict` and therefore in :meth:`RunSpec.digest`, so
#: results produced by different pinned backends can never alias one
#: another in the persistent cache.
BACKENDS = ("auto", "fused", "vectorized")

#: Replay-backend names a *co-run* spec may carry.  The multi-core loop
#: has its own backend pair — ``"stepped"`` is the per-event reference
#: arbiter, ``"fused"`` the skip-ahead scheduler built on the compiled
#: fast path — and ``"auto"`` defers to the runner (the
#: ``REPRO_CORUN_BACKEND`` env var, else fused).  Like the single-core
#: field, the choice rides in :meth:`CoRunSpec.to_dict` and therefore in
#: the digest, so pinned backends never alias in the persistent cache.
CORUN_BACKENDS = ("auto", "stepped", "fused")


@dataclass(frozen=True)
class RunSpec:
    """One (workload, scheme, mode, policy, config, …) simulation cell."""

    workload: str
    scheme: str
    mode: str = "real"
    policy: str = "default"
    limit_refs: int = None
    scale: float = 1.0
    seed: int = 12345
    backend: str = "auto"
    config_json: str = field(default=None, repr=False)

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, workload, scheme, config=None, mode="real",
               policy="default", limit_refs=None, scale=1.0, seed=12345,
               backend="auto"):
        """Validate arguments and build a canonical spec.

        ``workload`` must be a registered workload name.  The compiler
        ``policy`` only influences hinted schemes (the hint table is the
        only compiler output a run consumes), so it is canonicalized to
        ``"default"`` for unhinted schemes — all policies then share one
        baseline run and one cache entry.
        """
        from repro.sim.runner import SCHEMES  # late: runner imports us

        get_workload(workload)  # raises KeyError for unknown names
        try:
            scheme_spec = SCHEMES[scheme]
        except KeyError:
            raise KeyError(
                "unknown scheme %r (have: %s)" % (scheme, ", ".join(SCHEMES))
            )
        if not scheme_spec.hinted:
            policy = "default"
        if backend not in BACKENDS:
            raise ValueError(
                "unknown backend %r (have: %s)"
                % (backend, ", ".join(BACKENDS)))
        config = config or MachineConfig.scaled()
        return cls(
            workload=workload,
            scheme=scheme,
            mode=mode,
            policy=policy,
            limit_refs=limit_refs,
            scale=scale,
            seed=seed,
            backend=backend,
            config_json=_canonical_json(config_to_dict(config)),
        )

    # ------------------------------------------------------------------
    def machine_config(self):
        """Rebuild the :class:`MachineConfig` this spec describes."""
        if self.config_json is None:
            return MachineConfig.scaled()
        return config_from_dict(json.loads(self.config_json))

    def to_dict(self):
        """Plain-data form (config expanded to a nested dict)."""
        return {
            "workload": self.workload,
            "scheme": self.scheme,
            "mode": self.mode,
            "policy": self.policy,
            "limit_refs": self.limit_refs,
            "scale": self.scale,
            "seed": self.seed,
            "backend": self.backend,
            "config": (json.loads(self.config_json)
                       if self.config_json is not None else None),
        }

    @classmethod
    def from_dict(cls, data):
        """Inverse of :meth:`to_dict`.

        Strict about the backend field: a payload naming a backend this
        build does not know describes a run it cannot reproduce, so it is
        an error rather than a silent fallback.  A payload with no
        backend field (pre-backend producers) means ``"auto"``.
        """
        config = data.get("config")
        backend = data.get("backend", "auto")
        if backend not in BACKENDS:
            raise ValueError(
                "unknown backend %r in spec payload (have: %s)"
                % (backend, ", ".join(BACKENDS)))
        return cls(
            workload=data["workload"],
            scheme=data["scheme"],
            mode=data.get("mode", "real"),
            policy=data.get("policy", "default"),
            limit_refs=data.get("limit_refs"),
            scale=data.get("scale", 1.0),
            seed=data.get("seed", 12345),
            backend=backend,
            config_json=(_canonical_json(config)
                         if config is not None else None),
        )

    def digest(self, salt=""):
        """Content hash of the spec (plus an optional salt, e.g. a
        package version) — the persistent cache's key."""
        payload = _canonical_json(self.to_dict()) + salt
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def label(self):
        """Short human-readable name (progress lines, log messages)."""
        parts = [self.workload, self.scheme]
        if self.mode != "real":
            parts.append(self.mode)
        if self.policy != "default":
            parts.append(self.policy)
        return "/".join(parts)


@dataclass(frozen=True)
class CoRunSpec:
    """A multi-core co-run: N :class:`RunSpec` cells sharing one memory
    system.

    Cell ``i`` describes what core ``i`` replays (workload, scheme,
    policy, trace limit).  The shared L2/MSHR/DRAM geometry is taken from
    cell 0's machine configuration; :meth:`create` requires every cell to
    agree on it, so a co-run is unambiguous.  Frozen and hashable like
    :class:`RunSpec` — it drops into the experiment memo, the batch pool,
    the persistent cache, and the sweep supervisor unchanged.  The
    serialized form carries a ``"corun"`` marker so one payload field
    dispatches both spec kinds.
    """

    cells: tuple
    backend: str = "auto"

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, workloads, scheme="none", config=None, mode="real",
               policy="default", limit_refs=None, scale=1.0, seed=12345,
               backend="auto"):
        """Build a co-run over ``workloads`` (a sequence of names).

        ``scheme`` is either one name applied to every core or a sequence
        of per-core names (same length as ``workloads``).  The remaining
        parameters are applied to every cell.  ``backend`` selects the
        multi-core replay loop (see :data:`CORUN_BACKENDS`).
        """
        workloads = tuple(workloads)
        if not workloads:
            raise ValueError("a co-run needs at least one workload")
        if isinstance(scheme, str):
            schemes = (scheme,) * len(workloads)
        else:
            schemes = tuple(scheme)
            if len(schemes) != len(workloads):
                raise ValueError(
                    "%d schemes for %d workloads"
                    % (len(schemes), len(workloads)))
        cells = tuple(
            RunSpec.create(
                workload, s, config=config, mode=mode, policy=policy,
                limit_refs=limit_refs, scale=scale, seed=seed)
            for workload, s in zip(workloads, schemes)
        )
        return cls(cells=cells, backend=backend)

    def __post_init__(self):
        if not isinstance(self.cells, tuple) or not self.cells:
            raise ValueError("CoRunSpec.cells must be a non-empty tuple")
        if self.backend not in CORUN_BACKENDS:
            raise ValueError(
                "unknown co-run backend %r (have: %s)"
                % (self.backend, ", ".join(CORUN_BACKENDS)))
        first = self.cells[0]
        for cell in self.cells[1:]:
            if cell.config_json != first.config_json:
                raise ValueError(
                    "co-run cells disagree on the machine configuration")
            if cell.mode != first.mode:
                raise ValueError("co-run cells disagree on the mode")

    # ------------------------------------------------------------------
    @property
    def n_cores(self):
        """Number of cores (= cells) in the co-run."""
        return len(self.cells)

    @property
    def workload(self):
        """Combined workload label, e.g. ``"mcf+swim"``."""
        return "+".join(cell.workload for cell in self.cells)

    @property
    def scheme(self):
        """The shared scheme name, or the per-core join when they differ."""
        schemes = [cell.scheme for cell in self.cells]
        if all(s == schemes[0] for s in schemes):
            return schemes[0]
        return "+".join(schemes)

    @property
    def mode(self):
        """The cells' (shared) hierarchy mode."""
        return self.cells[0].mode

    def machine_config(self):
        """The shared :class:`MachineConfig` (cell 0's; all cells agree)."""
        return self.cells[0].machine_config()

    # ------------------------------------------------------------------
    def to_dict(self):
        """Plain-data form, tagged with the ``"corun"`` marker."""
        return {
            "corun": True,
            "backend": self.backend,
            "cells": [cell.to_dict() for cell in self.cells],
        }

    @classmethod
    def from_dict(cls, data):
        """Inverse of :meth:`to_dict`.

        Strict about the backend field, like :meth:`RunSpec.from_dict`:
        an unknown name describes a run this build cannot reproduce.  A
        payload with no backend field (pre-backend producers) means
        ``"auto"``.
        """
        backend = data.get("backend", "auto")
        if backend not in CORUN_BACKENDS:
            raise ValueError(
                "unknown co-run backend %r in spec payload (have: %s)"
                % (backend, ", ".join(CORUN_BACKENDS)))
        return cls(cells=tuple(
            RunSpec.from_dict(cell) for cell in data["cells"]),
            backend=backend)

    def digest(self, salt=""):
        """Content hash (the persistent cache's key), as in RunSpec."""
        payload = _canonical_json(self.to_dict()) + salt
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def label(self):
        """Short human-readable name (progress lines, log messages)."""
        parts = [self.workload, self.scheme]
        if self.mode != "real":
            parts.append(self.mode)
        return "/".join(parts)


# ----------------------------------------------------------------------
# Payload dispatch + strict validation (the repro.serve request path)
# ----------------------------------------------------------------------

#: Keys a serialized RunSpec payload may carry (``RunSpec.to_dict``).
RUNSPEC_KEYS = frozenset((
    "workload", "scheme", "mode", "policy", "limit_refs", "scale",
    "seed", "backend", "config",
))

#: Keys a serialized CoRunSpec payload may carry (``CoRunSpec.to_dict``).
CORUNSPEC_KEYS = frozenset(("corun", "backend", "cells"))


def _require(condition, message, *args):
    """Raise ValueError(message % args) unless ``condition`` holds."""
    if not condition:
        raise ValueError(message % args if args else message)


def _validate_run_payload(data):
    """Reject a malformed serialized RunSpec with a precise ValueError.

    Everything ``RunSpec.from_dict`` tolerates silently — unknown keys,
    unregistered workload/scheme names, wrong field types, an
    unconstructible machine config — is an error here, because a network
    client's typo must surface as a 400 with a reason, not as a worker
    crash (or a silently-default field) minutes later.
    """
    from repro.sim.runner import SCHEMES  # late: runner imports us

    _require(isinstance(data, dict), "spec payload must be an object, "
             "not %s", type(data).__name__)
    unknown = set(data) - RUNSPEC_KEYS
    _require(not unknown, "unknown spec field(s): %s",
             ", ".join(sorted(unknown)))
    _require("workload" in data and "scheme" in data,
             "spec payload needs 'workload' and 'scheme'")
    workload = data["workload"]
    _require(isinstance(workload, str), "'workload' must be a string")
    try:
        get_workload(workload)
    except KeyError:
        raise ValueError("unknown workload %r" % (workload,))
    scheme = data["scheme"]
    _require(scheme in SCHEMES, "unknown scheme %r (have: %s)",
             scheme, ", ".join(sorted(SCHEMES)))
    mode = data.get("mode", "real")
    _require(mode in MODES, "unknown mode %r (have: %s)",
             mode, ", ".join(MODES))
    _require(isinstance(data.get("policy", "default"), str),
             "'policy' must be a string")
    limit = data.get("limit_refs")
    _require(limit is None or (isinstance(limit, int)
                               and not isinstance(limit, bool)
                               and limit > 0),
             "'limit_refs' must be a positive integer or null")
    scale = data.get("scale", 1.0)
    _require(isinstance(scale, (int, float)) and not isinstance(scale, bool)
             and scale > 0, "'scale' must be a positive number")
    seed = data.get("seed", 12345)
    _require(isinstance(seed, int) and not isinstance(seed, bool),
             "'seed' must be an integer")
    backend = data.get("backend", "auto")
    _require(backend in BACKENDS, "unknown backend %r (have: %s)",
             backend, ", ".join(BACKENDS))
    config = data.get("config")
    if config is not None:
        _require(isinstance(config, dict), "'config' must be an object")
        try:
            config_from_dict(config)
        except (TypeError, ValueError) as exc:
            raise ValueError("bad machine config: %s" % exc)


def _validate_corun_payload(data):
    """Reject a malformed serialized CoRunSpec with a precise ValueError.

    Validates the envelope, then every cell with
    :func:`_validate_run_payload`; the cross-cell invariants (shared
    config, shared mode) are re-checked by ``CoRunSpec.__post_init__``
    during construction.
    """
    unknown = set(data) - CORUNSPEC_KEYS
    _require(not unknown, "unknown co-run field(s): %s",
             ", ".join(sorted(unknown)))
    backend = data.get("backend", "auto")
    _require(backend in CORUN_BACKENDS,
             "unknown co-run backend %r (have: %s)",
             backend, ", ".join(CORUN_BACKENDS))
    cells = data.get("cells")
    _require(isinstance(cells, list) and cells,
             "'cells' must be a non-empty list of spec objects")
    for i, cell in enumerate(cells):
        try:
            _validate_run_payload(cell)
        except ValueError as exc:
            raise ValueError("cell %d: %s" % (i, exc))


def spec_from_dict(data, strict=False):
    """Rehydrate a serialized spec of either kind.

    Dispatches on the ``"corun"`` marker :meth:`CoRunSpec.to_dict`
    plants: a payload carrying it becomes a :class:`CoRunSpec`,
    everything else a :class:`RunSpec`.  With ``strict=True`` the
    payload is validated field by field first — unknown keys,
    unregistered names, and type errors all raise ``ValueError`` with a
    human-readable reason.  This is the deserializer behind ``POST
    /runs`` in :mod:`repro.serve`: strict mode is what turns a
    malformed request body into a 400 instead of a worker-side crash.
    """
    _require(isinstance(data, dict), "spec payload must be an object, "
             "not %s", type(data).__name__)
    if data.get("corun"):
        if strict:
            _validate_corun_payload(data)
        return CoRunSpec.from_dict(data)
    if strict:
        _validate_run_payload(data)
    return RunSpec.from_dict(data)
