"""RunSpec: a frozen, hashable, serializable description of one run.

A :class:`RunSpec` captures everything that determines a simulation's
outcome — workload, scheme, mode, compiler policy, machine configuration,
scale, seed, and trace length — as plain data.  Because it is immutable
and hashable it serves as a dictionary key (the in-memory memo in
:class:`~repro.experiments.common.ExperimentContext`), and because it
round-trips through :meth:`to_dict`/:meth:`from_dict` it crosses process
boundaries (the :mod:`repro.sim.batch` worker pool) and disk boundaries
(the :mod:`repro.sim.cache` persistent cache, which keys entries by
:meth:`digest`).

The machine configuration travels inside the spec as a canonical JSON
string (``config_json``) so the spec itself stays hashable; use
:meth:`machine_config` to rebuild the :class:`MachineConfig`.
"""

import hashlib
import json
from dataclasses import dataclass, field

from repro.mem.dram import DRAMConfig
from repro.sim.config import MachineConfig
from repro.workloads.base import get_workload

#: Every MachineConfig scalar parameter, in declaration order.  ``dram``
#: is handled separately (it is itself a parameter object).
MACHINE_FIELDS = (
    "l1_size", "l1_assoc", "l1_latency",
    "l2_size", "l2_assoc", "l2_latency",
    "block_size", "mshr_entries", "region_size",
    "prefetch_queue_size", "prefetch_queue_policy",
    "recursive_depth", "pointer_blocks",
    "issue_width", "window_size", "prefetch_insert",
    "adapt_epoch_accesses",
    "tlb_entries", "tlb_assoc", "tlb_page_size", "tlb_miss_latency",
)

DRAM_FIELDS = (
    "channels", "banks_per_channel", "row_size",
    "row_hit_latency", "row_miss_latency", "transfer_cycles",
    "block_size",
)


def config_to_dict(config):
    """Flatten a :class:`MachineConfig` (and its DRAMConfig) to plain data."""
    out = {name: getattr(config, name) for name in MACHINE_FIELDS}
    out["dram"] = {name: getattr(config.dram, name) for name in DRAM_FIELDS}
    return out


def config_from_dict(data):
    """Rebuild a :class:`MachineConfig` from :func:`config_to_dict` output."""
    params = dict(data)
    dram = params.pop("dram", None)
    if dram is not None:
        params["dram"] = DRAMConfig(**dram)
    return MachineConfig(**params)


def _canonical_json(data):
    """Deterministic JSON: sorted keys, no whitespace variance."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


#: Replay-backend names a spec may carry.  ``"auto"`` defers the choice
#: to the runner (``REPRO_BACKEND`` env var, else vectorized when numpy
#: is available); the other two pin it.  The backend participates in
#: :meth:`RunSpec.to_dict` and therefore in :meth:`RunSpec.digest`, so
#: results produced by different pinned backends can never alias one
#: another in the persistent cache.
BACKENDS = ("auto", "fused", "vectorized")

#: Replay-backend names a *co-run* spec may carry.  The multi-core loop
#: has its own backend pair — ``"stepped"`` is the per-event reference
#: arbiter, ``"fused"`` the skip-ahead scheduler built on the compiled
#: fast path — and ``"auto"`` defers to the runner (the
#: ``REPRO_CORUN_BACKEND`` env var, else fused).  Like the single-core
#: field, the choice rides in :meth:`CoRunSpec.to_dict` and therefore in
#: the digest, so pinned backends never alias in the persistent cache.
CORUN_BACKENDS = ("auto", "stepped", "fused")


@dataclass(frozen=True)
class RunSpec:
    """One (workload, scheme, mode, policy, config, …) simulation cell."""

    workload: str
    scheme: str
    mode: str = "real"
    policy: str = "default"
    limit_refs: int = None
    scale: float = 1.0
    seed: int = 12345
    backend: str = "auto"
    config_json: str = field(default=None, repr=False)

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, workload, scheme, config=None, mode="real",
               policy="default", limit_refs=None, scale=1.0, seed=12345,
               backend="auto"):
        """Validate arguments and build a canonical spec.

        ``workload`` must be a registered workload name.  The compiler
        ``policy`` only influences hinted schemes (the hint table is the
        only compiler output a run consumes), so it is canonicalized to
        ``"default"`` for unhinted schemes — all policies then share one
        baseline run and one cache entry.
        """
        from repro.sim.runner import SCHEMES  # late: runner imports us

        get_workload(workload)  # raises KeyError for unknown names
        try:
            scheme_spec = SCHEMES[scheme]
        except KeyError:
            raise KeyError(
                "unknown scheme %r (have: %s)" % (scheme, ", ".join(SCHEMES))
            )
        if not scheme_spec.hinted:
            policy = "default"
        if backend not in BACKENDS:
            raise ValueError(
                "unknown backend %r (have: %s)"
                % (backend, ", ".join(BACKENDS)))
        config = config or MachineConfig.scaled()
        return cls(
            workload=workload,
            scheme=scheme,
            mode=mode,
            policy=policy,
            limit_refs=limit_refs,
            scale=scale,
            seed=seed,
            backend=backend,
            config_json=_canonical_json(config_to_dict(config)),
        )

    # ------------------------------------------------------------------
    def machine_config(self):
        """Rebuild the :class:`MachineConfig` this spec describes."""
        if self.config_json is None:
            return MachineConfig.scaled()
        return config_from_dict(json.loads(self.config_json))

    def to_dict(self):
        """Plain-data form (config expanded to a nested dict)."""
        return {
            "workload": self.workload,
            "scheme": self.scheme,
            "mode": self.mode,
            "policy": self.policy,
            "limit_refs": self.limit_refs,
            "scale": self.scale,
            "seed": self.seed,
            "backend": self.backend,
            "config": (json.loads(self.config_json)
                       if self.config_json is not None else None),
        }

    @classmethod
    def from_dict(cls, data):
        """Inverse of :meth:`to_dict`.

        Strict about the backend field: a payload naming a backend this
        build does not know describes a run it cannot reproduce, so it is
        an error rather than a silent fallback.  A payload with no
        backend field (pre-backend producers) means ``"auto"``.
        """
        config = data.get("config")
        backend = data.get("backend", "auto")
        if backend not in BACKENDS:
            raise ValueError(
                "unknown backend %r in spec payload (have: %s)"
                % (backend, ", ".join(BACKENDS)))
        return cls(
            workload=data["workload"],
            scheme=data["scheme"],
            mode=data.get("mode", "real"),
            policy=data.get("policy", "default"),
            limit_refs=data.get("limit_refs"),
            scale=data.get("scale", 1.0),
            seed=data.get("seed", 12345),
            backend=backend,
            config_json=(_canonical_json(config)
                         if config is not None else None),
        )

    def digest(self, salt=""):
        """Content hash of the spec (plus an optional salt, e.g. a
        package version) — the persistent cache's key."""
        payload = _canonical_json(self.to_dict()) + salt
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def label(self):
        """Short human-readable name (progress lines, log messages)."""
        parts = [self.workload, self.scheme]
        if self.mode != "real":
            parts.append(self.mode)
        if self.policy != "default":
            parts.append(self.policy)
        return "/".join(parts)


@dataclass(frozen=True)
class CoRunSpec:
    """A multi-core co-run: N :class:`RunSpec` cells sharing one memory
    system.

    Cell ``i`` describes what core ``i`` replays (workload, scheme,
    policy, trace limit).  The shared L2/MSHR/DRAM geometry is taken from
    cell 0's machine configuration; :meth:`create` requires every cell to
    agree on it, so a co-run is unambiguous.  Frozen and hashable like
    :class:`RunSpec` — it drops into the experiment memo, the batch pool,
    the persistent cache, and the sweep supervisor unchanged.  The
    serialized form carries a ``"corun"`` marker so one payload field
    dispatches both spec kinds.
    """

    cells: tuple
    backend: str = "auto"

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, workloads, scheme="none", config=None, mode="real",
               policy="default", limit_refs=None, scale=1.0, seed=12345,
               backend="auto"):
        """Build a co-run over ``workloads`` (a sequence of names).

        ``scheme`` is either one name applied to every core or a sequence
        of per-core names (same length as ``workloads``).  The remaining
        parameters are applied to every cell.  ``backend`` selects the
        multi-core replay loop (see :data:`CORUN_BACKENDS`).
        """
        workloads = tuple(workloads)
        if not workloads:
            raise ValueError("a co-run needs at least one workload")
        if isinstance(scheme, str):
            schemes = (scheme,) * len(workloads)
        else:
            schemes = tuple(scheme)
            if len(schemes) != len(workloads):
                raise ValueError(
                    "%d schemes for %d workloads"
                    % (len(schemes), len(workloads)))
        cells = tuple(
            RunSpec.create(
                workload, s, config=config, mode=mode, policy=policy,
                limit_refs=limit_refs, scale=scale, seed=seed)
            for workload, s in zip(workloads, schemes)
        )
        return cls(cells=cells, backend=backend)

    def __post_init__(self):
        if not isinstance(self.cells, tuple) or not self.cells:
            raise ValueError("CoRunSpec.cells must be a non-empty tuple")
        if self.backend not in CORUN_BACKENDS:
            raise ValueError(
                "unknown co-run backend %r (have: %s)"
                % (self.backend, ", ".join(CORUN_BACKENDS)))
        first = self.cells[0]
        for cell in self.cells[1:]:
            if cell.config_json != first.config_json:
                raise ValueError(
                    "co-run cells disagree on the machine configuration")
            if cell.mode != first.mode:
                raise ValueError("co-run cells disagree on the mode")

    # ------------------------------------------------------------------
    @property
    def n_cores(self):
        """Number of cores (= cells) in the co-run."""
        return len(self.cells)

    @property
    def workload(self):
        """Combined workload label, e.g. ``"mcf+swim"``."""
        return "+".join(cell.workload for cell in self.cells)

    @property
    def scheme(self):
        """The shared scheme name, or the per-core join when they differ."""
        schemes = [cell.scheme for cell in self.cells]
        if all(s == schemes[0] for s in schemes):
            return schemes[0]
        return "+".join(schemes)

    @property
    def mode(self):
        """The cells' (shared) hierarchy mode."""
        return self.cells[0].mode

    def machine_config(self):
        """The shared :class:`MachineConfig` (cell 0's; all cells agree)."""
        return self.cells[0].machine_config()

    # ------------------------------------------------------------------
    def to_dict(self):
        """Plain-data form, tagged with the ``"corun"`` marker."""
        return {
            "corun": True,
            "backend": self.backend,
            "cells": [cell.to_dict() for cell in self.cells],
        }

    @classmethod
    def from_dict(cls, data):
        """Inverse of :meth:`to_dict`.

        Strict about the backend field, like :meth:`RunSpec.from_dict`:
        an unknown name describes a run this build cannot reproduce.  A
        payload with no backend field (pre-backend producers) means
        ``"auto"``.
        """
        backend = data.get("backend", "auto")
        if backend not in CORUN_BACKENDS:
            raise ValueError(
                "unknown co-run backend %r in spec payload (have: %s)"
                % (backend, ", ".join(CORUN_BACKENDS)))
        return cls(cells=tuple(
            RunSpec.from_dict(cell) for cell in data["cells"]),
            backend=backend)

    def digest(self, salt=""):
        """Content hash (the persistent cache's key), as in RunSpec."""
        payload = _canonical_json(self.to_dict()) + salt
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def label(self):
        """Short human-readable name (progress lines, log messages)."""
        parts = [self.workload, self.scheme]
        if self.mode != "real":
            parts.append(self.mode)
        return "/".join(parts)
