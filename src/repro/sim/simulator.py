"""The top-level simulator: core + hierarchy + prefetcher over one trace."""

from repro.cpu.core import Core
from repro.mem.hierarchy import Hierarchy
from repro.sim.stats import SimStats


class Simulator:
    """Owns the simulated machine for one run.

    ``reference=True`` builds the hierarchy with its hot-path shortcuts
    disabled, so the run exercises the unoptimized code paths; the
    differential tests compare its statistics byte-for-byte against a
    default-configuration run.
    """

    def __init__(self, config, space, prefetcher=None, mode="real",
                 hint_table=None, trace_sink=None, reference=False):
        self.config = config
        self.space = space
        self.hierarchy = Hierarchy(config, space, prefetcher, mode,
                                   trace_sink=trace_sink, reference=reference)
        self.core = Core(config, self.hierarchy, hint_table)

    def run(self, events, workload="?", scheme="?", limit_refs=None):
        """Execute a trace event stream; return the run's :class:`SimStats`."""
        self.core.execute(events, limit_refs=limit_refs)
        self.hierarchy.finish(self.core.cycles)
        return SimStats(workload, scheme, self.core, self.hierarchy)

    def run_compiled(self, trace, workload="?", scheme="?", limit_refs=None,
                     backend="fused"):
        """Execute a :class:`~repro.trace.compiled.CompiledTrace`.

        Issues the identical machine behavior :meth:`run` would over the
        trace's event stream.  ``backend`` picks the replay loop:
        ``"fused"`` is the scalar columnar loop, ``"vectorized"`` batches
        boring stretches with numpy (and silently degrades to the fused
        loop when numpy or the configuration doesn't support batching —
        the two are byte-identical in every statistic).
        """
        if backend == "vectorized":
            self.core.execute_vectorized(trace, limit_refs=limit_refs)
        elif backend == "fused":
            self.core.execute_compiled(trace, limit_refs=limit_refs)
        else:
            raise ValueError(
                "unknown replay backend %r (have: fused, vectorized)"
                % (backend,))
        self.hierarchy.finish(self.core.cycles)
        return SimStats(workload, scheme, self.core, self.hierarchy)
