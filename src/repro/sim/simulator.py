"""The top-level simulator: core + hierarchy + prefetcher over one trace."""

from repro.cpu.core import Core
from repro.mem.hierarchy import Hierarchy
from repro.sim.stats import SimStats


class Simulator:
    """Owns the simulated machine for one run."""

    def __init__(self, config, space, prefetcher=None, mode="real",
                 hint_table=None, trace_sink=None):
        self.config = config
        self.space = space
        self.hierarchy = Hierarchy(config, space, prefetcher, mode,
                                   trace_sink=trace_sink)
        self.core = Core(config, self.hierarchy, hint_table)

    def run(self, events, workload="?", scheme="?", limit_refs=None):
        """Execute a trace event stream; return the run's :class:`SimStats`."""
        self.core.execute(events, limit_refs=limit_refs)
        self.hierarchy.finish(self.core.cycles)
        return SimStats(workload, scheme, self.core, self.hierarchy)
