"""Scheme registry and the simulation engine.

The engine entry point is :func:`execute`, which takes a frozen
:class:`~repro.sim.spec.RunSpec` and returns the run's
:class:`~repro.sim.stats.SimStats` (the pipeline's RunResult): it builds
the workload in a fresh address space, compiles hints when the scheme
uses them, generates the trace, and simulates it.

``run_workload("swim", "grp")`` remains as a thin convenience shim that
constructs the RunSpec and calls :func:`execute`.

Schemes
-------
The :data:`SCHEMES` registry below is the single source of truth for
which prefetch engines exist; every enumeration elsewhere — both CLIs'
``--scheme`` help, the experiment runners, and the generated
``docs/SCHEMES.md`` reference page (``tools/gen_scheme_docs.py``) — is
derived from it, so a newly registered scheme shows up everywhere
without further edits.
"""

import os

from repro.adapt.engines import (
    AdaptiveChasePrefetcher,
    AdaptiveGazePrefetcher,
    AdaptiveGRPPrefetcher,
    AdaptiveSRPPrefetcher,
)
from repro.compiler.driver import compile_hints
from repro.mem.space import AddressSpace
from repro.metrics import TraceSink
from repro.prefetch.base import NullPrefetcher
from repro.prefetch.chase import ChasePrefetcher
from repro.prefetch.gaze import GazePrefetcher
from repro.prefetch.grp import GRPPrefetcher
from repro.prefetch.pointer import PointerPrefetcher, RecursivePointerPrefetcher
from repro.prefetch.srp import SRPPrefetcher
from repro.prefetch.stride import StridePrefetcher
from repro.sim.config import MachineConfig
from repro.sim.simulator import Simulator
from repro.sim.spec import BACKENDS, CORUN_BACKENDS, RunSpec
from repro.trace.interp import Interpreter
from repro.trace.store import TraceKey, default_store, hint_signature
from repro.workloads.base import Workload, get_workload


class SchemeSpec:
    """How to build the prefetcher (and whether the binary carries hints).

    ``engine`` names the prefetcher class the factory instantiates (None
    for the no-prefetching baseline) and ``summary`` is the registry
    entry's one-line description; both exist so documentation —
    ``docs/SCHEMES.md`` via ``tools/gen_scheme_docs.py``, the CLI help
    epilogs — can be generated from the registry instead of drifting in
    prose.
    """

    def __init__(self, factory, hinted=False, variable_regions=True,
                 indirect_mode="instruction", engine=None, summary=""):
        self.factory = factory
        self.hinted = hinted
        self.variable_regions = variable_regions
        self.indirect_mode = indirect_mode
        self.engine = engine
        self.summary = summary


SCHEMES = {
    "none": SchemeSpec(
        lambda result: None,
        engine=NullPrefetcher,
        summary="no prefetching (baseline; also the perfect-L1/L2 modes)",
    ),
    "stride": SchemeSpec(
        lambda result: StridePrefetcher(),
        engine=StridePrefetcher,
        summary="predictor-directed stream buffers (Sherwood et al.)",
    ),
    "srp": SchemeSpec(
        lambda result: SRPPrefetcher(),
        engine=SRPPrefetcher,
        summary="scheduled region prefetching, hardware only (SRP)",
    ),
    "pointer": SchemeSpec(
        lambda result: PointerPrefetcher(),
        engine=PointerPrefetcher,
        summary="stateless content-directed pointer prefetching",
    ),
    "pointer-recursive": SchemeSpec(
        lambda result: RecursivePointerPrefetcher(),
        engine=RecursivePointerPrefetcher,
        summary="pointer prefetching chased recursive_depth levels deep",
    ),
    "grp": SchemeSpec(
        lambda result: GRPPrefetcher(result.hint_table, variable_regions=True),
        hinted=True,
        variable_regions=True,
        engine=GRPPrefetcher,
        summary="guided region prefetching, variable regions (GRP/Var)",
    ),
    "grp-fix": SchemeSpec(
        lambda result: GRPPrefetcher(result.hint_table,
                                     variable_regions=False),
        hinted=True,
        variable_regions=False,
        engine=GRPPrefetcher,
        summary="GRP with fixed-size regions only (GRP/Fix)",
    ),
    # Section 3.3.3's alternate indirect encoding: a base-setting
    # instruction per loop plus an indirect hint bit on the b[i] loads.
    "grp-hintbit": SchemeSpec(
        lambda result: GRPPrefetcher(result.hint_table,
                                     variable_regions=True),
        hinted=True,
        variable_regions=True,
        indirect_mode="hintbit",
        engine=GRPPrefetcher,
        summary="GRP with the hint-bit indirect encoding (Section 3.3.3)",
    ),
    # Literature-derived challengers (ROADMAP item 4): a Gaze-style
    # spatial-footprint engine and a dependence-based pointer chaser.
    "gaze": SchemeSpec(
        lambda result: GazePrefetcher(),
        engine=GazePrefetcher,
        summary="Gaze-style per-PC region footprints with temporal replay",
    ),
    "chase": SchemeSpec(
        lambda result: ChasePrefetcher(),
        engine=ChasePrefetcher,
        summary="dependence-based pointer chasing down linked structures",
    ),
    # Feedback-directed variants (repro.adapt): the static engines under
    # an epoch-based runtime throttle.  srp-adaptive needs no hints at
    # all — the point of comparison against hint-guided grp.
    "srp-adaptive": SchemeSpec(
        lambda result: AdaptiveSRPPrefetcher(),
        engine=AdaptiveSRPPrefetcher,
        summary="SRP under the runtime feedback throttle (repro.adapt)",
    ),
    "grp-adaptive": SchemeSpec(
        lambda result: AdaptiveGRPPrefetcher(result.hint_table,
                                             variable_regions=True),
        hinted=True,
        variable_regions=True,
        engine=AdaptiveGRPPrefetcher,
        summary="GRP with the feedback control plane layered on",
    ),
    "gaze-adaptive": SchemeSpec(
        lambda result: AdaptiveGazePrefetcher(),
        engine=AdaptiveGazePrefetcher,
        summary="Gaze under the feedback throttle (replay-length capped)",
    ),
    "chase-adaptive": SchemeSpec(
        lambda result: AdaptiveChasePrefetcher(),
        engine=AdaptiveChasePrefetcher,
        summary="pointer chasing under the feedback throttle",
    ),
}


def resolve_backend(requested="auto"):
    """Resolve a spec's replay-backend request to ``fused``/``vectorized``.

    ``"auto"`` (the default on every spec) consults the ``REPRO_BACKEND``
    environment variable; a pinned spec backend wins over the
    environment.  When neither pins a choice, the vectorized backend is
    used whenever numpy is importable — it is byte-identical to the fused
    loop in every statistic, so the choice only affects speed.  Unknown
    names, from either source, are errors rather than silent fallbacks.
    """
    backend = requested or "auto"
    if backend == "auto":
        env = os.environ.get("REPRO_BACKEND", "").strip()
        if env:
            if env not in BACKENDS:
                raise ValueError(
                    "REPRO_BACKEND=%r is not a known backend (have: %s)"
                    % (env, ", ".join(BACKENDS)))
            backend = env
    if backend == "auto":
        from repro.sim import vectorized
        backend = "vectorized" if vectorized.available() else "fused"
    if backend not in ("fused", "vectorized"):
        raise ValueError(
            "unknown replay backend %r (have: %s)"
            % (backend, ", ".join(BACKENDS)))
    return backend


def resolve_corun_backend(requested="auto"):
    """Resolve a co-run spec's backend request to ``stepped``/``fused``.

    The multi-core analogue of :func:`resolve_backend`: ``"auto"`` (the
    default on every :class:`~repro.sim.spec.CoRunSpec`) consults the
    ``REPRO_CORUN_BACKEND`` environment variable; a pinned spec backend
    wins over the environment.  When neither pins a choice, the fused
    skip-ahead loop is used — it is byte-identical to the stepped
    reference in every statistic (the differential matrix enforces it),
    so the choice only affects speed.  A resolved ``"fused"`` may still
    degrade to ``"stepped"`` inside :func:`~repro.sim.multicore.
    execute_corun` when the configuration falls outside the fused loop's
    exactness envelope (TLB-enabled configs) — a degradation, never an
    error, mirroring the vectorized backend's no-numpy fallback.
    """
    backend = requested or "auto"
    if backend == "auto":
        env = os.environ.get("REPRO_CORUN_BACKEND", "").strip()
        if env:
            if env not in CORUN_BACKENDS:
                raise ValueError(
                    "REPRO_CORUN_BACKEND=%r is not a known co-run backend"
                    " (have: %s)" % (env, ", ".join(CORUN_BACKENDS)))
            backend = env
    if backend == "auto":
        backend = "fused"
    if backend not in ("stepped", "fused"):
        raise ValueError(
            "unknown co-run backend %r (have: %s)"
            % (backend, ", ".join(CORUN_BACKENDS)))
    return backend


def execute(spec, trace_path=None, reference=False):
    """Run the simulation a :class:`RunSpec` describes; return its RunResult.

    This is the engine: RunSpec in, SimStats out.  Everything that
    influences the outcome is read from the spec, so two calls with equal
    specs produce identical results (the batch runner and the persistent
    cache both rely on this).  ``trace_path``, when given, streams the
    run's structured JSONL event trace there; it is a pure side channel —
    the returned stats are identical with or without it.

    ``reference=True`` runs the unoptimized paths end to end: the
    interpreter's event generator feeds the simulator directly (no
    compiled trace, no trace store) and the hierarchy's hot-path
    shortcuts are disabled.  The result must be byte-identical to the
    default fast path — the differential tests enforce this.
    """
    workload = get_workload(spec.workload)
    try:
        scheme_spec = SCHEMES[spec.scheme]
    except KeyError:
        raise KeyError(
            "unknown scheme %r (have: %s)" % (spec.scheme, ", ".join(SCHEMES))
        )
    return _simulate(workload, spec.scheme, scheme_spec,
                     spec.machine_config(), spec.mode, spec.policy,
                     spec.limit_refs, spec.scale, spec.seed,
                     trace_path=trace_path, reference=reference,
                     backend=spec.backend)


def run_workload(workload, scheme, config=None, mode="real", policy="default",
                 limit_refs=None, scale=1.0, seed=12345, trace_path=None,
                 reference=False, backend="auto"):
    """Run one (workload, scheme) simulation; return its SimStats.

    Thin shim over :func:`execute`.  ``workload`` may be a name or a
    :class:`Workload` instance (instances bypass RunSpec, which only
    carries registered names — their traces are built fresh, never
    cached, because the trace store keys by registered name).  ``mode``
    selects perfect-cache variants (``real``/``perfect_l1``/
    ``perfect_l2``).  ``policy`` is the compiler's spatial-marking policy
    (Section 5.4).
    """
    if isinstance(workload, str):
        return execute(RunSpec.create(
            workload, scheme, config=config, mode=mode, policy=policy,
            limit_refs=limit_refs, scale=scale, seed=seed, backend=backend,
        ), trace_path=trace_path, reference=reference)
    if not isinstance(workload, Workload):
        raise TypeError("workload must be a name or Workload instance")
    try:
        scheme_spec = SCHEMES[scheme]
    except KeyError:
        raise KeyError(
            "unknown scheme %r (have: %s)" % (scheme, ", ".join(SCHEMES))
        )
    return _simulate(workload, scheme, scheme_spec,
                     config or MachineConfig.scaled(), mode, policy,
                     limit_refs, scale, seed, trace_path=trace_path,
                     reference=reference, cacheable=False, backend=backend)


#: Built-workload cache: {(name, scale, base): (space, built, program)}.
#: Every registered workload's build is deterministic in (name, scale,
#: base) — the builders seed their own RNGs — and nothing written after
#: build time: the interpreter and the prefetchers' pointer scans only
#: *read* the address space.  Sharing the build across the scheme × mode
#: matrix saves re-running it (heap construction, shuffles) per cell.
#: ``base`` shifts the address-space layout — multi-core co-runs build
#: core ``i``'s image at ``i << 36`` so cores never alias in the shared
#: L2 (base 0, the single-core default, is byte-compatible with before).
_BUILD_CACHE = {}
_BUILD_CACHE_MAX = 32


def _built_workload(workload, scale, cacheable, base=0):
    if not cacheable:
        space = AddressSpace(base=base)
        built = workload.build(space, scale=scale)
        return space, built, built.program.finalize()
    key = (workload.name, scale, base)
    entry = _BUILD_CACHE.get(key)
    if entry is None:
        space = AddressSpace(base=base)
        built = workload.build(space, scale=scale)
        entry = (space, built, built.program.finalize())
        if len(_BUILD_CACHE) >= _BUILD_CACHE_MAX:
            _BUILD_CACHE.clear()
        _BUILD_CACHE[key] = entry
    return entry


def _simulate(workload, scheme, scheme_spec, config, mode, policy,
              limit_refs, scale, seed, trace_path=None, reference=False,
              cacheable=True, backend="auto"):
    # Reference runs rebuild from scratch so a (hypothetical) mutation of
    # shared build state by the fast path could not escape the
    # differential comparison.
    space, built, program = _built_workload(
        workload, scale, cacheable and not reference)

    # Only hinted schemes consume compiler output; skipping the compiler
    # for none/stride/srp/pointer saves all its pass time on runs that
    # would discard the result anyway.
    if scheme_spec.hinted:
        result = compile_hints(
            program,
            l2_size=config.l2_size,
            block_size=config.block_size,
            policy=policy,
            variable_regions=scheme_spec.variable_regions,
            indirect_mode=scheme_spec.indirect_mode,
        )
        hint_table = result.hint_table
        compile_for_trace = result
        hint_sig = hint_signature(policy, scheme_spec.variable_regions,
                                  scheme_spec.indirect_mode, config.l2_size)
    else:
        result = None
        hint_table = None
        compile_for_trace = None
        hint_sig = None
    prefetcher = scheme_spec.factory(result)

    def build_interp():
        # The interpreter only *reads* the address space, so the trace can
        # be generated eagerly (or loaded from the store) without changing
        # the space state the prefetchers observe during simulation.
        interp = Interpreter(
            program, space, compile_for_trace, seed=seed,
            block_size=config.block_size, ops_scale=workload.ops_scale,
        )
        for name, addr in built.pointer_bindings.items():
            interp.bind_pointer(name, addr)
        return interp

    limit = limit_refs if limit_refs is not None else workload.default_refs
    label = scheme if mode == "real" else "%s/%s" % (scheme, mode)
    sink = TraceSink(trace_path) if trace_path is not None else None
    try:
        sim = Simulator(config, space, prefetcher, mode=mode,
                        hint_table=hint_table, trace_sink=sink,
                        reference=reference)
        if reference:
            return sim.run(build_interp().run(limit=limit),
                           workload=workload.name, scheme=label)
        if cacheable:
            # Schemes sharing a key — every unhinted one, plus hinted
            # schemes whose compiles coincide — share one trace
            # generation per process, and across processes via disk.
            key = TraceKey(workload.name, scale, seed, limit,
                           config.block_size, hint_sig)
            trace = default_store().get_or_build(
                key,
                lambda: build_interp().run_columns(limit),
            )
        else:
            trace = build_interp().run_columns(limit)
        return sim.run_compiled(trace, workload=workload.name, scheme=label,
                                backend=resolve_backend(backend))
    finally:
        if sink is not None:
            sink.close()
