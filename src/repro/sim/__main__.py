"""Run one (benchmark, scheme) simulation from the command line.

Usage::

    python -m repro.sim swim grp
    python -m repro.sim mcf srp --refs 100000 --policy conservative
    python -m repro.sim art none --mode perfect_l2
    python -m repro.sim art grp --timeout 120 --retries 3
    python -m repro.sim mcf,swim srp --refs 20000       # 2-core co-run
    python -m repro.sim mcf srp-adaptive --cores 2      # mcf x 2 co-run

A comma-separated benchmark list (or ``--cores N``, or ``--corun``)
switches to multi-core co-run mode: every benchmark replays on its own
core against a shared L2/MSHR/DRAM, and the report shows per-core
slowdown versus solo, the fairness index, and cross-core pollution.

Passing any resilience flag (``--timeout``, ``--retries``,
``--checkpoint``, ``--resume``) — or setting ``$REPRO_FAULT_PLAN`` —
routes the run through the sweep supervisor: the simulation runs in an
isolated worker process with a deadline and bounded retries, and a
permanent failure prints a structured failure record and exits 1 instead
of a traceback.
"""

import argparse
import os
import sys

from repro.sim.config import MachineConfig
from repro.sim.faults import FAULT_PLAN_ENV
from repro.sim.runner import SCHEMES, run_workload
from repro.sim.spec import CoRunSpec, RunSpec
from repro.sim.stats import result_to_json
from repro.sim.supervisor import SweepSupervisor
from repro.workloads import workload_names


def print_corun(result, config):
    """Render one CoRunResult as the co-run report."""
    shared = result.shared
    slowdowns = shared.get("slowdowns") or [0.0] * result.n_cores
    shares = shared.get("bandwidth_share") or [0.0] * result.n_cores
    print("machine: %s" % config.describe())
    print("co-run: %s / %s (%d cores)"
          % (result.workload, result.scheme, result.n_cores))
    print("  core  %-12s %-14s %12s %7s %9s %8s"
          % ("workload", "scheme", "cycles", "ipc", "slowdown", "bw"))
    for i, stats in enumerate(result.cores):
        print("  %4d  %-12s %-14s %12.0f %7.3f %9.3f %7.1f%%"
              % (i, stats.workload, stats.scheme, stats.cycles,
                 stats.ipc, slowdowns[i], 100 * shares[i]))
    print("  fairness        %8.3f   (Jain index over relative speeds)"
          % shared.get("fairness", 0.0))
    print("  geomean slowdown %7.3f" % shared.get("geomean_slowdown", 0.0))
    print("  cross-core pollution %d misses, shared-L2 miss rate %.1f%%"
          % (shared.get("cross_core_pollution", 0),
             100 * shared.get("l2", {}).get("miss_rate", 0.0)))


def main(argv=None):
    parser = argparse.ArgumentParser(prog="python -m repro.sim")
    parser.add_argument("benchmark",
                        help="benchmark name (one of: %s), or a "
                             "comma-separated list for a co-run"
                             % ", ".join(workload_names()))
    # Sorted and derived from the registry so newly registered schemes
    # show up in the help text automatically (and in a stable order).
    parser.add_argument("scheme", choices=sorted(SCHEMES),
                        help="prefetch scheme: %s"
                             % ", ".join(sorted(SCHEMES)))
    parser.add_argument("--refs", type=int, default=None,
                        help="trace length (default: workload's)")
    parser.add_argument("--mode", default="real",
                        choices=["real", "perfect_l1", "perfect_l2"])
    parser.add_argument("--policy", default="default",
                        choices=["conservative", "default", "aggressive"])
    parser.add_argument("--config", default="scaled",
                        choices=["scaled", "paper", "tiny"])
    parser.add_argument("--cores", type=int, default=None, metavar="N",
                        help="co-run N copies of the benchmark on N cores "
                             "sharing one L2/MSHR/DRAM")
    parser.add_argument("--corun", action="store_true",
                        help="force co-run mode (implied by a "
                             "comma-separated benchmark list or --cores)")
    parser.add_argument("--baseline", action="store_true",
                        help="also run the no-prefetching baseline and "
                             "report relative metrics")
    parser.add_argument("--metrics", action="store_true",
                        help="print the observability summary (prefetch "
                             "timeliness, pollution, DRAM utilization)")
    parser.add_argument("--json", action="store_true",
                        help="emit the run's RunResult as canonical JSON "
                             "on stdout — byte-identical to what the "
                             "repro.serve result endpoint returns for "
                             "the same spec — instead of the report")
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="write the run's JSONL event trace to FILE")
    resilience = parser.add_argument_group(
        "resilience (any of these routes the run through the sweep "
        "supervisor)")
    resilience.add_argument("--timeout", type=float, default=None,
                            metavar="SECONDS",
                            help="kill and retry the worker after SECONDS")
    resilience.add_argument("--retries", type=int, default=None,
                            help="extra attempts after a crash, hang, or "
                                 "error (supervised default: 2)")
    resilience.add_argument("--checkpoint", metavar="FILE", default=None,
                            help="journal the run's state to FILE")
    resilience.add_argument("--resume", action="store_true",
                            help="reuse a completed result from the "
                                 "--checkpoint journal")
    args = parser.parse_args(argv)

    # The benchmark argument is free-form to admit comma-separated co-run
    # mixes, so validate the name(s) against the registry by hand.
    names = [name.strip() for name in args.benchmark.split(",") if name.strip()]
    known = set(workload_names())
    unknown = [name for name in names if name not in known]
    if not names or unknown:
        parser.error("unknown benchmark%s: %s (choose from %s)"
                     % ("s" if len(unknown) > 1 else "",
                        ", ".join(unknown) or args.benchmark,
                        ", ".join(workload_names())))
    if args.cores is not None:
        if args.cores < 1:
            parser.error("--cores must be >= 1")
        if len(names) == 1:
            names = names * args.cores
        elif len(names) != args.cores:
            parser.error("--cores %d does not match the %d benchmarks given"
                         % (args.cores, len(names)))
    corun = args.corun or len(names) > 1

    config = getattr(MachineConfig, args.config)()
    supervised = (args.timeout is not None or args.retries is not None
                  or args.checkpoint is not None or args.resume
                  or bool(os.environ.get(FAULT_PLAN_ENV)))
    if corun:
        if args.trace or args.baseline:
            parser.error("--trace/--baseline are single-core only "
                         "(co-runs report slowdown vs solo directly)")
        spec = CoRunSpec.create(names, args.scheme, config=config,
                                mode=args.mode, policy=args.policy,
                                limit_refs=args.refs)
        if supervised:
            supervisor = SweepSupervisor(
                [spec], checkpoint=args.checkpoint, resume=args.resume,
                retries=2 if args.retries is None else args.retries,
                timeout=args.timeout)
            result = supervisor.run()[0]
            if not result.ok:
                if args.json:
                    print(result_to_json(result))
                print("run failed permanently: %r" % result, file=sys.stderr)
                return 1
        else:
            from repro.sim.multicore import execute_corun
            result = execute_corun(spec)
        if args.json:
            print(result_to_json(result))
            return 0
        print_corun(result, config)
        return 0
    if supervised:
        spec = RunSpec.create(args.benchmark, args.scheme, config=config,
                              mode=args.mode, policy=args.policy,
                              limit_refs=args.refs)
        supervisor = SweepSupervisor(
            [spec], checkpoint=args.checkpoint, resume=args.resume,
            retries=2 if args.retries is None else args.retries,
            timeout=args.timeout,
            trace_path_fn=(lambda _spec: args.trace) if args.trace
            else None)
        stats = supervisor.run()[0]
        if not stats.ok:
            if args.json:
                print(result_to_json(stats))
            print("run failed permanently: %r" % stats, file=sys.stderr)
            return 1
    else:
        stats = run_workload(args.benchmark, args.scheme, config=config,
                             mode=args.mode, policy=args.policy,
                             limit_refs=args.refs, trace_path=args.trace)
    if args.json:
        print(result_to_json(stats))
        return 0
    print("machine: %s" % config.describe())
    print("%s / %s (%s, policy=%s)" % (args.benchmark, args.scheme,
                                       args.mode, args.policy))
    print("  instructions  %12d" % stats.instructions)
    print("  cycles        %12.0f" % stats.cycles)
    print("  IPC           %12.3f" % stats.ipc)
    print("  L2 miss rate  %11.1f%%" % (100 * stats.l2_miss_rate))
    print("  DRAM traffic  %12d bytes" % stats.traffic_bytes)
    print("  pf accuracy   %11.1f%%" % (100 * stats.prefetch_accuracy))
    if stats.adapt:
        final = stats.adapt["final"]
        print("  adapt         %6d epochs, %d knob changes -> %s L%d "
              "(region %dB, budget %d, depth %d)"
              % (stats.adapt["epochs"], stats.adapt["knob_changes"],
                 "on" if final["enabled"] else "off", final["level"],
                 final["region_size"], final["issue_budget"],
                 final["insert_depth"]))
    if args.metrics:
        print("observability:")
        print("  timely pf     %12d" % stats.timely_prefetches)
        print("  late pf       %12d" % stats.late_prefetches)
        print("  useless pf    %12d" % stats.useless_evicted_prefetches)
        print("  neverref pf   %12d" % stats.never_referenced_prefetches)
        print("  pollution     %12d misses" % stats.pollution_misses)
        print("  chan util     %11.1f%%"
              % (100 * stats.mean_channel_utilization))
        mshr = stats.metrics.get("mshr", {})
        print("  mshr stalls   %12d" % mshr.get("demand_stalls", 0))
    if args.trace:
        print("trace written to %s" % args.trace)
    if args.baseline and args.scheme != "none":
        base = run_workload(args.benchmark, "none", config=config,
                            limit_refs=args.refs)
        print("vs no prefetching:")
        print("  speedup       %12.3f" % stats.speedup_over(base))
        print("  traffic ratio %12.2fx" % stats.traffic_ratio_over(base))
        print("  coverage      %11.1f%%" % (100 * stats.coverage_over(base)))


if __name__ == "__main__":
    raise SystemExit(main())
