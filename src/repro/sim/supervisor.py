"""Resilient sweep execution: checkpointing, timeouts, retries.

:func:`~repro.sim.batch.run_batch` treats every worker as infallible —
one crashed or hung worker loses the whole matrix.  The
:class:`SweepSupervisor` runs the same cells with failure isolation:

* **one process per cell attempt** — a worker that segfaults, is
  OOM-killed, or hangs takes down only its own cell;
* **per-worker timeouts** — a hung worker is killed at the deadline and
  the attempt counts as a failure;
* **bounded retries with exponential backoff** — transient failures
  (flaky I/O, injected faults) are retried up to ``retries`` times,
  waiting ``retry_base * 2**attempt`` (capped at ``retry_cap``) between
  attempts;
* **a checkpoint journal** — every cell-state transition
  (running / retry / done / failed) is appended to a JSONL file as it
  happens, so a sweep interrupted by ``kill -9``, OOM, or Ctrl-C resumes
  from the journal with ``resume=True`` and re-runs only unfinished
  cells (``done`` entries carry the full serialized result, so resume
  works even with no result cache);
* **a failure budget** — a cell that exhausts its retries degrades
  gracefully into a structured :class:`~repro.sim.stats.RunFailure` in
  its RunResult slot; when more than ``max_failures`` cells fail
  permanently the sweep aborts with :class:`SweepAborted`.

Results return in input order, exactly like ``run_batch``, and the
engine's determinism contract means a resumed sweep's results are
byte-identical to an uninterrupted one (CI enforces this with
``tools/check_resilience.py``).  Recovery paths are exercised
deterministically via :mod:`repro.sim.faults` (``REPRO_FAULT_PLAN``).
"""

import heapq
import json
import os
import time
from collections import deque
from multiprocessing import connection as mpconnection
import multiprocessing

from repro.sim.batch import execute_payload, resolve_jobs, trace_path_for
from repro.sim.cache import version_salt
from repro.sim.faults import FaultPlan, corrupt_file
from repro.sim.stats import RunFailure, result_from_dict

#: How long the supervisor waits on worker pipes per scheduling pass.
POLL_INTERVAL = 0.05


class SweepAborted(RuntimeError):
    """Raised when permanent failures exceed the sweep's budget.

    Carries the permanent failures so far in ``failures``; the checkpoint
    journal still holds every completed cell, so a fixed-up sweep can
    ``resume`` without repeating them.
    """

    def __init__(self, message, failures=()):
        super().__init__(message)
        self.failures = list(failures)


def _cell_worker(conn, payload):
    """Isolated worker: run one cell attempt, ship the result dict back.

    Runs in its own process; ``payload`` carries the serialized spec,
    the trace path, the attempt index, and (when fault injection is on)
    the serialized fault plan.  Sends ``("ok", stats_dict)`` or
    ``("error", message)`` over the pipe; an unclean death (crash fault,
    real segfault, OOM kill) sends nothing — the supervisor sees EOF.
    """
    try:
        plan_data = payload.get("faults")
        if plan_data:
            FaultPlan.from_dict(plan_data).inject(
                payload["label"], payload["attempt"])
        data = execute_payload(payload["spec"], payload.get("trace_path"))
        conn.send(("ok", data))
    except BaseException as exc:  # ship *any* failure back, then die
        try:
            conn.send(("error", "%s: %s" % (type(exc).__name__, exc)))
        except (OSError, ValueError):
            pass
    finally:
        try:
            conn.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# Checkpoint journal
# ----------------------------------------------------------------------

class Checkpoint:
    """Append-only JSONL journal of per-cell sweep state.

    One record per state transition, flushed immediately so the journal
    is current the instant the parent dies.  ``load`` keeps the *latest*
    record per cell digest and tolerates a torn final line (the one
    artifact a ``kill -9`` mid-write can leave).
    """

    def __init__(self, path, fresh=False):
        self.path = str(path)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._handle = open(self.path, "w" if fresh else "a")

    def record(self, kind, **fields):
        """Append one journal record and flush it to the OS."""
        fields["kind"] = kind
        fields["t"] = time.time()
        self._handle.write(json.dumps(fields, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self):
        """Close the underlying file handle."""
        self._handle.close()

    # ------------------------------------------------------------------
    @staticmethod
    def load(path):
        """Parse a journal into {cell digest: latest record}.

        Unparseable lines (torn tail) and records without a digest (the
        sweep header) are skipped; later records override earlier ones,
        so a cell that was ``running`` when the parent died — and
        therefore never reached ``done`` — correctly reads as unfinished.
        """
        cells = {}
        try:
            with open(path) as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue  # torn write; everything before it stands
                    digest = record.get("digest")
                    if digest:
                        cells[digest] = record
        except OSError:
            return {}
        return cells


class JournalTailer:
    """Incrementally follow a checkpoint journal as it is appended.

    The streaming half of the journal contract: :class:`Checkpoint`
    appends one flushed JSONL record per cell-state transition, and a
    tailer turns that file into a live progress feed — each
    :meth:`poll` returns only the records appended since the previous
    poll, while :attr:`cells` accumulates the latest record per cell
    digest (the same reduction :meth:`Checkpoint.load` performs over a
    finished journal).  ``repro.serve`` builds both its ``GET
    /jobs/<id>`` snapshots and its chunked progress stream on this.

    Byte-offset based, so a poll costs one ``open``+``seek``+``read`` of
    just the new suffix.  A torn final line — the parent dying
    mid-``write`` — stays buffered until its newline arrives and is
    simply never surfaced if it never does; a *vanished* journal (file
    deleted or not yet created) is an empty poll, not an error.
    """

    def __init__(self, path):
        self.path = str(path)
        self.cells = {}   #: {cell digest: latest record}
        self.header = None  #: the sweep header record, once seen
        self._offset = 0
        self._partial = b""

    def poll(self):
        """Return the records appended since the last poll (maybe [])."""
        try:
            with open(self.path, "rb") as handle:
                handle.seek(self._offset)
                chunk = handle.read()
        except OSError:
            return []
        if not chunk:
            return []
        self._offset += len(chunk)
        lines = (self._partial + chunk).split(b"\n")
        self._partial = lines.pop()  # b"" on a newline-terminated read
        records = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                continue  # torn or garbage line; skip it
            records.append(record)
            digest = record.get("digest")
            if digest:
                self.cells[digest] = record
            elif record.get("kind") == "sweep":
                self.header = record
        return records

    def progress(self):
        """Summarize the cells seen so far as state counts.

        Returns ``{"total", "done", "failed", "running", "retrying"}``;
        ``total`` comes from the sweep header when present (0 until
        then).  ``done`` counts only terminal successes, so
        ``done + failed == total`` is the finished condition.
        """
        counts = {"done": 0, "failed": 0, "running": 0, "retrying": 0}
        for record in self.cells.values():
            state = record.get("state")
            if state == "done":
                counts["done"] += 1
            elif state == "failed":
                counts["failed"] += 1
            elif state == "retry":
                counts["retrying"] += 1
            elif state == "running":
                counts["running"] += 1
        counts["total"] = (self.header or {}).get("total", 0)
        return counts


# ----------------------------------------------------------------------
# Supervisor
# ----------------------------------------------------------------------

class _InFlight:
    """Bookkeeping for one running cell attempt."""

    def __init__(self, process, conn, deadline):
        self.process = process
        self.conn = conn
        self.deadline = deadline


class SweepSupervisor:
    """Checkpointed, fault-tolerant executor for a list of RunSpecs.

    Parameters mirror :func:`~repro.sim.batch.run_batch` (``jobs``,
    ``cache``, ``progress``, ``trace_dir``) plus the resilience knobs:
    ``checkpoint`` (journal path; None disables journaling), ``resume``
    (reuse an existing journal's ``done`` cells; failed and in-flight
    cells re-run with a fresh retry budget), ``retries`` (extra attempts
    per cell), ``timeout`` (seconds per attempt; None = unbounded),
    ``max_failures`` (permanently failed cells tolerated before
    :class:`SweepAborted`; None = unlimited), ``retry_base`` /
    ``retry_cap`` (exponential backoff bounds, seconds), ``fault_plan``
    (a :class:`~repro.sim.faults.FaultPlan`; defaults to the env-gated
    ``$REPRO_FAULT_PLAN``), and ``trace_path_fn`` (overrides the
    per-spec trace file mapping when ``trace_dir`` alone is too rigid).
    """

    def __init__(self, specs, jobs=1, cache=None, progress=None,
                 trace_dir=None, checkpoint=None, resume=False, retries=2,
                 timeout=None, max_failures=None, retry_base=0.5,
                 retry_cap=30.0, fault_plan=None, trace_path_fn=None):
        self.specs = list(specs)
        self.jobs = jobs
        self.cache = cache
        self.progress = progress
        self.trace_dir = trace_dir
        self.checkpoint_path = checkpoint
        self.resume = resume
        self.retries = max(0, retries)
        self.timeout = timeout
        self.max_failures = max_failures
        self.retry_base = retry_base
        self.retry_cap = retry_cap
        self.fault_plan = (fault_plan if fault_plan is not None
                           else FaultPlan.from_env())
        self.trace_path_fn = trace_path_fn
        #: Permanent RunFailure records from the last :meth:`run`.
        self.failures = []

    # ------------------------------------------------------------------
    def _trace_path(self, spec):
        if self.trace_path_fn is not None:
            return self.trace_path_fn(spec)
        if self.trace_dir is None:
            return None
        return trace_path_for(self.trace_dir, spec)

    def _backoff(self, attempt):
        """Delay before retry number ``attempt`` (1-based), in seconds."""
        if self.retry_base <= 0:
            return 0.0
        return min(self.retry_cap, self.retry_base * (2 ** (attempt - 1)))

    # ------------------------------------------------------------------
    def run(self):
        """Execute the sweep; return results aligned with the input order.

        Each slot holds a :class:`~repro.sim.stats.SimStats` or, for a
        cell that failed permanently, a
        :class:`~repro.sim.stats.RunFailure`.
        """
        specs = list(self.specs)
        uniques = list(dict.fromkeys(specs))
        total = len(uniques)
        salt = version_salt()
        digests = {spec: spec.digest(salt) for spec in uniques}

        journal = {}
        ckpt = None
        if self.checkpoint_path is not None:
            if self.resume:
                journal = Checkpoint.load(self.checkpoint_path)
            ckpt = Checkpoint(self.checkpoint_path, fresh=not self.resume)
            ckpt.record("sweep", total=total, resumed=bool(journal))

        if self.trace_dir is not None:
            os.makedirs(self.trace_dir, exist_ok=True)

        done_count = 0
        resolved = {}
        self.failures = []

        def note(spec, cached):
            nonlocal done_count
            done_count += 1
            if self.progress is not None:
                self.progress(done_count, total, spec, cached)

        # -- resolve journal + cache hits up front ---------------------
        pending = []
        for spec in uniques:
            entry = journal.get(digests[spec])
            if entry and entry.get("state") == "done" and "stats" in entry:
                resolved[spec] = result_from_dict(entry["stats"])
                note(spec, True)
                continue
            if self.cache is not None and self._trace_path(spec) is None:
                stats = self.cache.get(spec)
                if stats is not None:
                    resolved[spec] = stats
                    if ckpt:
                        ckpt.record("cell", state="done",
                                    digest=digests[spec],
                                    label=spec.label(), attempts=0,
                                    cached=True, stats=stats.to_dict())
                    note(spec, True)
                    continue
            pending.append(spec)

        attempts = {spec: 0 for spec in pending}
        ready = deque(pending)
        waiting = []  # heap of (not_before, seq, spec)
        seq = 0
        in_flight = {}
        workers = resolve_jobs(self.jobs)
        ctx = multiprocessing.get_context()

        def launch(spec):
            attempt = attempts[spec]
            if ckpt:
                ckpt.record("cell", state="running", digest=digests[spec],
                            label=spec.label(), attempt=attempt)
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            payload = {
                "spec": spec.to_dict(),
                "trace_path": self._trace_path(spec),
                "attempt": attempt,
                "label": spec.label(),
            }
            if self.fault_plan is not None and len(self.fault_plan):
                payload["faults"] = self.fault_plan.to_dict()
            process = ctx.Process(target=_cell_worker,
                                  args=(child_conn, payload), daemon=True)
            process.start()
            child_conn.close()
            deadline = (time.monotonic() + self.timeout
                        if self.timeout is not None else None)
            in_flight[spec] = _InFlight(process, parent_conn, deadline)

        def complete(spec, stats):
            if self.cache is not None:
                self.cache.put(spec, stats)
                if (self.fault_plan is not None
                        and self.fault_plan.corrupts(spec.label())):
                    corrupt_file(str(self.cache.path_for(spec)))
            resolved[spec] = stats
            if ckpt:
                ckpt.record("cell", state="done", digest=digests[spec],
                            label=spec.label(), attempts=attempts[spec] + 1,
                            stats=stats.to_dict())
            note(spec, False)

        def attempt_failed(spec, kind, error):
            nonlocal seq
            attempts[spec] += 1
            if attempts[spec] <= self.retries:
                delay = self._backoff(attempts[spec])
                if ckpt:
                    ckpt.record("cell", state="retry", digest=digests[spec],
                                label=spec.label(), attempt=attempts[spec],
                                fail_kind=kind, error=error, delay=delay)
                seq += 1
                heapq.heappush(waiting,
                               (time.monotonic() + delay, seq, spec))
                return
            failure = RunFailure(spec.workload, spec.scheme,
                                 label=spec.label(), kind=kind, error=error,
                                 attempts=attempts[spec])
            resolved[spec] = failure
            self.failures.append(failure)
            if ckpt:
                ckpt.record("cell", state="failed", digest=digests[spec],
                            label=spec.label(), failure=failure.to_dict())
            note(spec, False)
            if (self.max_failures is not None
                    and len(self.failures) > self.max_failures):
                self._abort(ckpt)

        # -- scheduling loop -------------------------------------------
        try:
            while ready or waiting or in_flight:
                now = time.monotonic()
                while waiting and waiting[0][0] <= now:
                    ready.append(heapq.heappop(waiting)[2])
                while ready and len(in_flight) < workers:
                    launch(ready.popleft())
                if not in_flight:
                    if waiting:
                        time.sleep(
                            min(POLL_INTERVAL,
                                max(0.0, waiting[0][0] - time.monotonic())))
                    continue

                conns = [cell.conn for cell in in_flight.values()]
                readable = mpconnection.wait(conns, timeout=POLL_INTERVAL)
                for spec, cell in list(in_flight.items()):
                    if cell.conn in readable:
                        try:
                            message = cell.conn.recv()
                        except (EOFError, OSError):
                            message = None
                        cell.process.join()
                        cell.conn.close()
                        del in_flight[spec]
                        if message is not None and message[0] == "ok":
                            complete(spec, result_from_dict(message[1]))
                        elif message is not None:
                            attempt_failed(spec, "error", message[1])
                        else:
                            attempt_failed(
                                spec, "crash",
                                "worker died without a result (exit code "
                                "%s)" % cell.process.exitcode)
                    elif (cell.deadline is not None
                          and time.monotonic() > cell.deadline):
                        cell.process.kill()
                        cell.process.join()
                        cell.conn.close()
                        del in_flight[spec]
                        attempt_failed(
                            spec, "timeout",
                            "worker exceeded the %.1fs timeout"
                            % self.timeout)
        finally:
            for cell in in_flight.values():
                cell.process.kill()
                cell.process.join()
                cell.conn.close()
            if ckpt:
                ckpt.close()

        return [resolved[spec] for spec in specs]

    # ------------------------------------------------------------------
    def _abort(self, ckpt):
        if ckpt:
            ckpt.record("abort", failures=len(self.failures),
                        budget=self.max_failures)
        labels = ", ".join(f.label for f in self.failures)
        raise SweepAborted(
            "sweep aborted: %d cell(s) failed permanently (budget %d): %s"
            % (len(self.failures), self.max_failures, labels),
            failures=self.failures)
