"""Machine configuration.

Two presets are provided:

* :meth:`MachineConfig.paper` — the configuration from Section 5.1 of the
  paper: 1.6 GHz 4-wide out-of-order core, 64-entry RUU, 64 KB 2-way L1,
  1 MB 4-way unified L2, 8 MSHRs per cache, 4 KB prefetch regions, 32-entry
  LIFO prefetch queue, 4-channel Rambus memory.
* :meth:`MachineConfig.scaled` — the default for experiments: identical in
  every structural ratio, but with the caches (and, correspondingly, the
  workload working sets) shrunk ~8x so a pure-Python simulator can sweep 18
  benchmarks x 6 schemes in minutes.  DESIGN.md Section 5 discusses why this
  preserves the paper's qualitative results.
"""

from repro.mem.dram import DRAMConfig


class MachineConfig:
    """All hardware parameters for one simulated machine."""

    def __init__(
        self,
        l1_size=64 * 1024,
        l1_assoc=2,
        l1_latency=3,
        l2_size=1024 * 1024,
        l2_assoc=4,
        l2_latency=12,
        block_size=64,
        mshr_entries=8,
        region_size=4096,
        prefetch_queue_size=32,
        prefetch_queue_policy="lifo",
        recursive_depth=6,
        pointer_blocks=2,
        issue_width=4,
        window_size=64,
        prefetch_insert="lru",
        adapt_epoch_accesses=2048,
        tlb_entries=0,
        tlb_assoc=4,
        tlb_page_size=8192,
        tlb_miss_latency=30,
        dram=None,
    ):
        self.l1_size = l1_size
        self.l1_assoc = l1_assoc
        self.l1_latency = l1_latency
        self.l2_size = l2_size
        self.l2_assoc = l2_assoc
        self.l2_latency = l2_latency
        self.block_size = block_size
        self.mshr_entries = mshr_entries
        self.region_size = region_size
        self.prefetch_queue_size = prefetch_queue_size
        self.prefetch_queue_policy = prefetch_queue_policy
        self.recursive_depth = recursive_depth
        self.pointer_blocks = pointer_blocks
        self.issue_width = issue_width
        self.window_size = window_size
        self.prefetch_insert = prefetch_insert
        #: Epoch length, in memory references, for the adaptive schemes'
        #: feedback loop (see repro.adapt).  Ignored by static schemes.
        self.adapt_epoch_accesses = adapt_epoch_accesses
        self.tlb_entries = tlb_entries
        self.tlb_assoc = tlb_assoc
        self.tlb_page_size = tlb_page_size
        self.tlb_miss_latency = tlb_miss_latency
        self.dram = dram or DRAMConfig(block_size=block_size)

    # ------------------------------------------------------------------
    @classmethod
    def paper(cls, **overrides):
        """The configuration in Section 5.1 of the paper."""
        params = {}
        params.update(overrides)
        return cls(**params)

    @classmethod
    def scaled(cls, **overrides):
        """The default experiment configuration (~8x smaller caches)."""
        params = dict(
            l1_size=8 * 1024,
            l2_size=128 * 1024,
        )
        params.update(overrides)
        return cls(**params)

    @classmethod
    def tiny(cls, **overrides):
        """A miniature machine for unit tests (fast, easy to reason about)."""
        params = dict(
            l1_size=1024,
            l1_assoc=2,
            l2_size=4096,
            l2_assoc=4,
            region_size=512,
        )
        params.update(overrides)
        return cls(**params)

    # ------------------------------------------------------------------
    @property
    def blocks_per_region(self):
        return self.region_size // self.block_size

    def replace(self, **overrides):
        """Return a copy with selected fields overridden."""
        params = dict(
            l1_size=self.l1_size,
            l1_assoc=self.l1_assoc,
            l1_latency=self.l1_latency,
            l2_size=self.l2_size,
            l2_assoc=self.l2_assoc,
            l2_latency=self.l2_latency,
            block_size=self.block_size,
            mshr_entries=self.mshr_entries,
            region_size=self.region_size,
            prefetch_queue_size=self.prefetch_queue_size,
            prefetch_queue_policy=self.prefetch_queue_policy,
            recursive_depth=self.recursive_depth,
            pointer_blocks=self.pointer_blocks,
            issue_width=self.issue_width,
            window_size=self.window_size,
            prefetch_insert=self.prefetch_insert,
            adapt_epoch_accesses=self.adapt_epoch_accesses,
            tlb_entries=self.tlb_entries,
            tlb_assoc=self.tlb_assoc,
            tlb_page_size=self.tlb_page_size,
            tlb_miss_latency=self.tlb_miss_latency,
            dram=self.dram,
        )
        params.update(overrides)
        return MachineConfig(**params)

    def describe(self):
        """Human-readable one-line summary (for reports)."""
        return (
            "L1 %dKB/%d-way, L2 %dKB/%d-way, %dB blocks, region %dB, "
            "queue %d (%s), window %d, issue %d"
            % (
                self.l1_size // 1024,
                self.l1_assoc,
                self.l2_size // 1024,
                self.l2_assoc,
                self.block_size,
                self.region_size,
                self.prefetch_queue_size,
                self.prefetch_queue_policy,
                self.window_size,
                self.issue_width,
            )
        )
