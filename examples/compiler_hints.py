#!/usr/bin/env python
"""Inspect the compiler: write a small program in the IR and dump the
hints every analysis pass produces — the Section 4 pipeline end to end.

The program reproduces the paper's Figures 3-6 in one function:

* a Fortran-style column-major array sweep (Figure 3),
* an indirect access ``c[b[i]]`` (Section 4.3),
* an induction-pointer scan (Figure 5),
* a recursive list walk (Figure 6).

Usage:  python examples/compiler_hints.py
"""

from repro.compiler.driver import CompilerPolicy, compile_hints
from repro.compiler.hints import FIXED_REGION_COEFF
from repro.compiler.ir import (
    Affine,
    ArrayDecl,
    ArrayRef,
    Compute,
    ForLoop,
    IndexLoad,
    PointerVar,
    Program,
    PtrChase,
    PtrLoop,
    PtrRef,
    Sym,
    Var,
    WhileLoop,
)
from repro.compiler.symbols import StructDecl


def build_program():
    i, j = Var("i"), Var("j")
    a = ArrayDecl("a", 8, [512, 512], layout="col")
    c = ArrayDecl("c", 8, [1 << 16], storage="heap")
    b = ArrayDecl("b", 4, [4096], storage="heap")
    p = PointerVar("p")
    node = StructDecl("t")
    node.add_scalar("f", 8)
    node.add_pointer("next", target="t")
    cursor = PointerVar("cursor", struct="t")

    fig3 = ForLoop(j, 0, 512, [
        ForLoop(i, 0, 512, [
            ArrayRef(a, [Affine.of(i), Affine.of(j)]),  # a(i,j), i inner
            Compute(4),
        ]),
    ])
    indirect = ForLoop(i, 0, 4096, [
        ArrayRef(c, [IndexLoad(b, Affine.of(i), scale=2, offset=1)]),
        Compute(3),
    ])
    fig5 = PtrLoop(p, Sym("n"), 16, [
        PtrRef(p, offset=0, size=8),   # *p
        PtrRef(p, offset=8, size=8),   # p->f
        Compute(2),
    ])
    fig6 = WhileLoop(Sym("m"), [
        PtrRef(cursor, field=node.field("f")),      # ...a->f...
        PtrChase(cursor, node.field("next")),       # a = a->next
        Compute(2),
    ])
    return Program("figures", [fig3, indirect, fig5, fig6],
                   bindings={"n": 1000, "m": 1000})


def describe(hint):
    if hint is None:
        return "(no hints)"
    bits = []
    if hint.spatial:
        bits.append("spatial")
    if hint.pointer:
        bits.append("pointer")
    if hint.recursive:
        bits.append("recursive")
    if hint.region_coeff != FIXED_REGION_COEFF:
        bits.append("size(coeff=%d)" % hint.region_coeff)
    return ", ".join(bits) if bits else "(no hints)"


def main():
    program = build_program()
    for policy in CompilerPolicy.ALL:
        result = compile_hints(program, l2_size=128 * 1024, block_size=64,
                               policy=policy)
        print("=== policy: %s ===" % policy)
        for ref_id in program.static_refs():
            print("  %-16s %s" % (ref_id, describe(result.hint_table.get(ref_id))))
        counts = result.counts()
        print("  Table-3 row: %d refs, %d spatial, %d pointer, "
              "%d recursive, %.0f%% hinted, %d indirect insts\n"
              % (counts["mem_insts"], counts["spatial"], counts["pointer"],
                 counts["recursive"], counts["ratio"], counts["indirect"]))


if __name__ == "__main__":
    main()
