#!/usr/bin/env python
"""Quickstart: run one benchmark under every prefetching scheme.

This is the five-minute tour of the public API:

1. pick a workload (here vpr, the indirect-access benchmark),
2. run it under each scheme with ``run_workload``,
3. compare speedup, traffic, coverage, and accuracy against the
   no-prefetching baseline — the exact quantities the paper's Tables 1
   and 5 report.

Usage:  python examples/quickstart.py [benchmark] [refs]
"""

import sys

from repro import run_workload
from repro.workloads import workload_names

SCHEMES = ["stride", "srp", "grp-fix", "grp"]


def main():
    bench = sys.argv[1] if len(sys.argv) > 1 else "vpr"
    refs = int(sys.argv[2]) if len(sys.argv) > 2 else 40_000
    if bench not in workload_names():
        raise SystemExit(
            "unknown benchmark %r; choose from: %s"
            % (bench, ", ".join(workload_names()))
        )

    print("benchmark: %s  (%d memory references per run)" % (bench, refs))
    base = run_workload(bench, "none", limit_refs=refs)
    perfect = run_workload(bench, "none", mode="perfect_l2",
                           limit_refs=refs)
    print("baseline IPC %.3f; perfect-L2 IPC %.3f (gap %.1f%%)\n"
          % (base.ipc, perfect.ipc,
             100 * (1 - base.ipc / perfect.ipc)))

    header = "%-8s %8s %9s %9s %9s" % (
        "scheme", "speedup", "traffic", "coverage", "accuracy")
    print(header)
    print("-" * len(header))
    for scheme in SCHEMES:
        stats = run_workload(bench, scheme, limit_refs=refs)
        print("%-8s %8.3f %8.2fx %8.1f%% %8.1f%%" % (
            scheme,
            stats.speedup_over(base),
            stats.traffic_ratio_over(base),
            100 * stats.coverage_over(base),
            100 * stats.prefetch_accuracy,
        ))
    print("\ntraffic is DRAM bytes relative to no prefetching; coverage "
          "is the reduction\nin demand fetches reaching DRAM; accuracy "
          "is the fraction of prefetched\nblocks referenced before "
          "eviction.")


if __name__ == "__main__":
    main()
