#!/usr/bin/env python
"""Pointer-chasing scenario: build a custom linked-data workload and
watch how each engine copes — the Figure 9 story in miniature.

The script constructs two versions of the same linked-list traversal:

* ``sequential`` — nodes allocated back to back, the layout SPEC's
  allocators tend to produce.  Aggressive *spatial* prefetching (SRP)
  covers this without understanding pointers at all, which is the
  paper's headline negative result for pointer prefetching.
* ``shuffled`` — link order randomized over the heap (mcf/twolf-style).
  Now spatial prefetching mostly pollutes, and only pointer-aware
  engines (the stateless scan, or GRP's hinted version of it) make
  progress.

Usage:  python examples/pointer_chasing.py [nodes] [refs]
"""

import sys

from repro.compiler.ir import (
    Compute,
    ForLoop,
    PointerVar,
    Program,
    PtrChase,
    PtrRef,
    Sym,
    Var,
    WhileLoop,
)
from repro.compiler.symbols import StructDecl
from repro.sim.runner import run_workload
from repro.workloads.base import Built, Workload
from repro.workloads.common import build_linked_list

SCHEMES = ["stride", "srp", "pointer", "pointer-recursive", "grp"]


class ListWalk(Workload):
    """A list traversal touching a payload field per node."""

    category = "int"
    language = "c"
    ops_scale = 8.0

    def __init__(self, layout, nodes):
        self.name = "listwalk-%s" % layout
        self.layout = layout
        self.nodes = nodes

    def build(self, space, scale=1.0):
        node = StructDecl("node_t")
        node.add_scalar("key", 8)
        node.add_scalar("payload", 8)
        node.add_pointer("next", target="node_t")
        head = build_linked_list(space, node, self.nodes,
                                 layout=self.layout)
        p = PointerVar("p", struct="node_t")
        t = Var("t")
        walk = WhileLoop(Sym("n"), [
            PtrRef(p, field=node.field("key")),
            PtrRef(p, field=node.field("payload"), is_store=True),
            PtrChase(p, node.field("next")),
            Compute(6),
        ])
        program = Program(self.name.replace("-", "_"), [
            ForLoop(t, 0, 1000, [walk]),
        ], bindings={"n": self.nodes})
        return Built(program, pointer_bindings={"p": head})


def main():
    nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 16384
    refs = int(sys.argv[2]) if len(sys.argv) > 2 else 40_000

    for layout in ("sequential", "shuffled"):
        workload = ListWalk(layout, nodes)
        base = run_workload(workload, "none", limit_refs=refs)
        print("\n=== %s layout (%d nodes, base IPC %.3f) ==="
              % (layout, nodes, base.ipc))
        header = "%-18s %8s %9s %9s" % ("scheme", "speedup", "traffic",
                                        "accuracy")
        print(header)
        print("-" * len(header))
        for scheme in SCHEMES:
            workload = ListWalk(layout, nodes)
            stats = run_workload(workload, scheme, limit_refs=refs)
            print("%-18s %8.3f %8.2fx %8.1f%%" % (
                scheme,
                stats.speedup_over(base),
                stats.traffic_ratio_over(base),
                100 * stats.prefetch_accuracy,
            ))
    print("\nSequential layout: plain region prefetching (srp) covers a "
          "pointer structure\nwithout chasing a single pointer — the "
          "paper's Section 5.2 observation.\nShuffled layout: only the "
          "pointer-aware engines help, and GRP's hints keep\ntheir "
          "traffic in check.")


if __name__ == "__main__":
    main()
