#!/usr/bin/env python
"""Bandwidth study: why GRP's traffic efficiency matters.

The paper's motivation for GRP is not uniprocessor speed — SRP already
delivers that — but *bandwidth*: "off-chip bandwidth will be the
dominant limiter of scalability for future chip multiprocessors".  This
script sweeps the DRAM channel count from 4 down to 1, emulating the
per-core bandwidth share in a CMP, and compares SRP and GRP on vpr and
twolf, the benchmarks where SRP's prefetch stream is mostly waste
(~10-16x traffic vs GRP's ~1x).

As channels shrink, SRP's useless prefetch traffic competes with its
useful prefetches and with demand fetches, so its speedup erodes faster
than GRP's.

Usage:  python examples/bandwidth_study.py [refs]
"""

import sys

from repro.mem.dram import DRAMConfig
from repro.sim.config import MachineConfig
from repro.sim.runner import run_workload

BENCHMARKS = ["vpr", "twolf"]
CHANNELS = [4, 2, 1]


def main():
    refs = int(sys.argv[1]) if len(sys.argv) > 1 else 30_000
    for bench in BENCHMARKS:
        print("\n=== %s ===" % bench)
        header = "%-9s %12s %12s %12s %12s" % (
            "channels", "SRP speedup", "GRP speedup", "SRP traffic",
            "GRP traffic")
        print(header)
        print("-" * len(header))
        for channels in CHANNELS:
            config = MachineConfig.scaled(
                dram=DRAMConfig(channels=channels)
            )
            base = run_workload(bench, "none", config=config,
                                limit_refs=refs)
            srp = run_workload(bench, "srp", config=config,
                               limit_refs=refs)
            grp = run_workload(bench, "grp", config=config,
                               limit_refs=refs)
            print("%-9d %12.3f %12.3f %11.2fx %11.2fx" % (
                channels,
                srp.speedup_over(base),
                grp.speedup_over(base),
                srp.traffic_ratio_over(base),
                grp.traffic_ratio_over(base),
            ))
    print("\nWith fewer channels (a CMP's per-core share), wasted "
          "prefetch traffic turns\nfrom free to expensive: SRP's "
          "speedup erodes faster than GRP's, at ~10x the\nbytes "
          "moved -- the paper's CMP-scalability argument for hint-"
          "guided prefetching.")


if __name__ == "__main__":
    main()
